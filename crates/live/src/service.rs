//! A live, multi-threaded demo service: a sharded in-memory KV store.
//!
//! This is the workload Pivot Tracing queries run against in live mode —
//! the analog of the simulated HDFS/HBase stack, but on real threads and
//! real sockets. A [`KvServer`] accepts TCP connections; each connection
//! gets a handler thread that routes requests to one of N shard worker
//! threads over [instrumented channels](crate::thread::channel), so a
//! request's baggage branches at dispatch and merges back with the reply.
//! [`KvClient`] carries the calling thread's baggage in every request
//! header and adopts the server's returned baggage, closing the causal
//! loop across the socket.
//!
//! Four tracepoints instrument the request path:
//!
//! | tracepoint               | exports                      |
//! |--------------------------|------------------------------|
//! | `KvClient.issueRequest`  | `client`, `op`, `key`        |
//! | `KvServer.receiveRequest`| `op`, `key`, `shard`         |
//! | `KvShard.execute`        | `shard`, `op`, `bytes`, `hit`|
//! | `KvServer.sendResponse`  | `bytes`                      |
//!
//! With those, the paper's Q1-shaped query — per-client bytes touched at
//! the shard level — is expressible end to end:
//!
//! ```text
//! From exec In KvShard.execute
//! Join req In First(KvClient.issueRequest) On req -> exec
//! GroupBy req.client
//! Select req.client, SUM(exec.bytes)
//! ```

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pivot_baggage::Baggage;
use pivot_core::{Agent, Frontend};
use pivot_itc::{DecodeError, Decoder, Encoder};
use pivot_model::Value;

use crate::frame::{read_frame, write_frame};
use crate::thread::{channel, Receiver, Sender};
use crate::{ctx, tracepoint};

/// Registers the KV service's tracepoints with a frontend so queries can
/// name them.
pub fn define_kv_tracepoints(frontend: &mut Frontend) {
    frontend.define("KvClient.issueRequest", ["client", "op", "key"]);
    frontend.define("KvServer.receiveRequest", ["op", "key", "shard"]);
    frontend.define("KvShard.execute", ["shard", "op", "bytes", "hit"]);
    frontend.define("KvServer.sendResponse", ["bytes"]);
}

/// A KV operation on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get { key: String },
    /// Write a key.
    Put { key: String, value: Vec<u8> },
}

impl KvOp {
    fn key(&self) -> &str {
        match self {
            KvOp::Get { key } | KvOp::Put { key, .. } => key,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            KvOp::Get { .. } => "get",
            KvOp::Put { .. } => "put",
        }
    }
}

/// One response: `value` is the stored bytes for a hit `Get`, empty
/// otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvResponse {
    /// Whether a `Get` found the key (`Put` always reports `true`).
    pub hit: bool,
    /// The value read, if any.
    pub value: Vec<u8>,
}

fn encode_request(bag: &[u8], op: &KvOp) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(bag);
    match op {
        KvOp::Get { key } => {
            enc.put_u8(0);
            enc.put_str(key);
        }
        KvOp::Put { key, value } => {
            enc.put_u8(1);
            enc.put_str(key);
            enc.put_bytes(value);
        }
    }
    enc.finish()
}

fn decode_request(payload: &[u8]) -> Result<(Baggage, KvOp), DecodeError> {
    let mut dec = Decoder::new(payload);
    // Transport boundary: decode strictly so corruption surfaces here
    // instead of silently dropping the request's causal context.
    let bag = Baggage::try_from_bytes(dec.take_bytes()?)?;
    let op = match dec.take_u8()? {
        0 => KvOp::Get {
            key: dec.take_str()?.to_owned(),
        },
        1 => KvOp::Put {
            key: dec.take_str()?.to_owned(),
            value: dec.take_bytes()?.to_vec(),
        },
        other => return Err(DecodeError::BadTag("kv op", other)),
    };
    if !dec.is_empty() {
        return Err(DecodeError::BadTag("kv request trailing bytes", 0));
    }
    Ok((bag, op))
}

fn encode_response(bag: &[u8], resp: &KvResponse) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(bag);
    enc.put_u8(resp.hit as u8);
    enc.put_bytes(&resp.value);
    enc.finish()
}

fn decode_response(payload: &[u8]) -> Result<(Baggage, KvResponse), DecodeError> {
    let mut dec = Decoder::new(payload);
    let bag = Baggage::try_from_bytes(dec.take_bytes()?)?;
    let hit = match dec.take_u8()? {
        0 => false,
        1 => true,
        other => return Err(DecodeError::BadTag("kv hit flag", other)),
    };
    let value = dec.take_bytes()?.to_vec();
    if !dec.is_empty() {
        return Err(DecodeError::BadTag("kv response trailing bytes", 0));
    }
    Ok((bag, KvResponse { hit, value }))
}

/// One unit of work handed to a shard worker. The reply channel is
/// instrumented, so the worker's baggage flows back to the handler.
struct Job {
    op: KvOp,
    reply: Sender<KvResponse>,
}

/// The sharded KV server.
///
/// `num_shards` worker threads each own a private `HashMap` (no locks on
/// the data path); connection handler threads hash keys onto shards and
/// dispatch over instrumented channels.
pub struct KvServer {
    addr: SocketAddr,
    agent: Arc<Agent>,
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl KvServer {
    /// Binds a loopback listener and starts `num_shards` shard workers
    /// plus the accept loop. Tracepoints fire against `agent`.
    pub fn start(num_shards: usize, agent: Arc<Agent>) -> io::Result<KvServer> {
        assert!(num_shards > 0, "need at least one shard");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        let mut shard_txs = Vec::with_capacity(num_shards);
        for shard_id in 0..num_shards {
            let (tx, rx) = channel::<Job>();
            shard_txs.push(tx);
            let agent = Arc::clone(&agent);
            threads.push(std::thread::spawn(move || {
                shard_worker(shard_id, &rx, &agent);
            }));
        }

        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_agent = Arc::clone(&agent);
        let accept_stop = Arc::clone(&stop);
        let accept_ops = Arc::clone(&ops);
        let accept_conns = Arc::clone(&conns);
        threads.push(std::thread::spawn(move || {
            // Handler threads detach; they exit when their connection
            // closes (client EOF, or `shutdown` severing the registered
            // stream), and shard workers exit once the last handler (and
            // this accept loop) drops the senders.
            loop {
                let Ok((conn, _)) = listener.accept() else {
                    break;
                };
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let _ = conn.set_nodelay(true);
                if let Ok(clone) = conn.try_clone() {
                    accept_conns.lock().push(clone);
                }
                let agent = Arc::clone(&accept_agent);
                let txs = shard_txs.clone();
                let ops = Arc::clone(&accept_ops);
                std::thread::spawn(move || connection_handler(conn, &txs, &agent, &ops));
            }
        }));

        Ok(KvServer {
            addr,
            agent,
            stop,
            ops,
            conns,
            threads: Mutex::new(threads),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The agent this server's tracepoints fire against.
    pub fn agent(&self) -> &Arc<Agent> {
        &self.agent
    }

    /// Requests served so far.
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops the accept loop, severs open client connections (so their
    /// handler threads release the shard channels), and joins the shard
    /// workers.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// FNV-1a; stable shard placement without pulling in a hasher dep.
fn shard_of(key: &str, num_shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % num_shards as u64) as usize
}

fn shard_worker(shard_id: usize, rx: &Receiver<Job>, agent: &Agent) {
    let mut store: HashMap<String, Vec<u8>> = HashMap::new();
    loop {
        // Fresh baggage per job: the channel recv below merges the
        // request's branch into it, and dropping the scope discards it so
        // unrelated requests never share causal state.
        let scope = ctx::attach(Baggage::new());
        let Ok(job) = rx.recv() else {
            drop(scope);
            break;
        };
        let (hit, bytes, value) = match &job.op {
            KvOp::Get { key } => match store.get(key) {
                Some(v) => (true, v.len(), v.clone()),
                None => (false, 0, Vec::new()),
            },
            KvOp::Put { key, value } => {
                let n = value.len();
                store.insert(key.clone(), value.clone());
                (true, n, Vec::new())
            }
        };
        tracepoint(
            agent,
            "KvShard.execute",
            &[
                ("shard", Value::U64(shard_id as u64)),
                ("op", Value::str(job.op.name())),
                ("bytes", Value::U64(bytes as u64)),
                ("hit", Value::Bool(hit)),
            ],
        );
        // Reply over the instrumented channel: our packed tuples branch
        // back to the handler and on to the client.
        let _ = job.reply.send(KvResponse { hit, value });
        drop(scope);
    }
}

fn connection_handler(
    mut conn: TcpStream,
    shard_txs: &[Sender<Job>],
    agent: &Agent,
    ops: &AtomicU64,
) {
    let Ok(mut write_half) = conn.try_clone() else {
        return;
    };
    while let Ok(payload) = read_frame(&mut conn) {
        // A malformed request is a protocol fault: close the connection
        // rather than guess at the request's intent.
        let Ok((bag, op)) = decode_request(&payload) else {
            break;
        };
        let scope = ctx::attach(bag);
        let shard = shard_of(op.key(), shard_txs.len());
        tracepoint(
            agent,
            "KvServer.receiveRequest",
            &[
                ("op", Value::str(op.name())),
                ("key", Value::str(op.key())),
                ("shard", Value::U64(shard as u64)),
            ],
        );
        let (reply_tx, reply_rx) = channel::<KvResponse>();
        let dispatched = shard_txs[shard]
            .send(Job {
                op,
                reply: reply_tx,
            })
            .is_ok();
        let resp = if dispatched {
            // recv joins the shard worker's baggage back in.
            reply_rx.recv().ok()
        } else {
            None
        };
        let resp = resp.unwrap_or(KvResponse {
            hit: false,
            value: Vec::new(),
        });
        tracepoint(
            agent,
            "KvServer.sendResponse",
            &[("bytes", Value::U64(resp.value.len() as u64))],
        );
        ops.fetch_add(1, Ordering::Relaxed);
        let mut bag = scope.detach();
        let out = encode_response(&bag.to_bytes(), &resp);
        if write_frame(&mut write_half, &out).is_err() {
            break;
        }
    }
    let _ = conn.shutdown(Shutdown::Both);
}

/// A blocking KV client. Each request carries the calling thread's
/// current baggage; the response's baggage (extended by the server-side
/// tracepoints) is adopted back into the thread.
pub struct KvClient {
    conn: TcpStream,
}

impl KvClient {
    /// Connects to a [`KvServer`].
    pub fn connect(addr: SocketAddr) -> io::Result<KvClient> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        Ok(KvClient { conn })
    }

    fn round_trip(&mut self, op: &KvOp) -> io::Result<KvResponse> {
        let bag = ctx::snapshot_bytes();
        write_frame(&mut self.conn, &encode_request(&bag, op))?;
        let payload = read_frame(&mut self.conn)?;
        let (resp_bag, resp) = decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        // The server's execution causally extends ours; its baggage
        // supersedes the snapshot we sent.
        ctx::merge(resp_bag);
        Ok(resp)
    }

    /// Reads `key`.
    pub fn get(&mut self, key: &str) -> io::Result<KvResponse> {
        self.round_trip(&KvOp::Get {
            key: key.to_owned(),
        })
    }

    /// Writes `key` = `value`.
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<KvResponse> {
        self.round_trip(&KvOp::Put {
            key: key.to_owned(),
            value: value.to_vec(),
        })
    }
}

/// A client pool driving steady load at a [`KvServer`], for demos, tests,
/// and the live benchmark.
///
/// Each pool thread opens its own connection and loops get/put with a
/// fresh baggage scope per operation, firing `KvClient.issueRequest`
/// against `agent` (the client process's agent) with a per-thread
/// `client` export — the paper's Q1 group-by key.
pub struct LoadGen {
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl LoadGen {
    /// Starts `num_clients` load threads against `addr`.
    pub fn start(addr: SocketAddr, num_clients: usize, agent: Arc<Agent>) -> io::Result<LoadGen> {
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for i in 0..num_clients {
            let mut client = KvClient::connect(addr)?;
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            let agent = Arc::clone(&agent);
            let name = format!("client-{i}");
            threads.push(std::thread::spawn(move || {
                let mut n: u64 = 0;
                while !stop.load(Ordering::SeqCst) {
                    let key = format!("key-{}", n % 64);
                    let value = vec![0u8; 64 + (n % 192) as usize];
                    let scope = ctx::attach(Baggage::new());
                    let op = if n.is_multiple_of(3) { "get" } else { "put" };
                    tracepoint(
                        &agent,
                        "KvClient.issueRequest",
                        &[
                            ("client", Value::str(&name)),
                            ("op", Value::str(op)),
                            ("key", Value::str(&key)),
                        ],
                    );
                    let result = if op == "get" {
                        client.get(&key)
                    } else {
                        client.put(&key, &value)
                    };
                    drop(scope);
                    if result.is_err() {
                        break;
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                }
            }));
        }
        Ok(LoadGen {
            stop,
            ops,
            threads: Mutex::new(threads),
        })
    }

    /// Operations completed across all load threads.
    pub fn ops_done(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops the load threads and waits for them.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LoadGen {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_core::ProcessInfo;
    use std::time::Duration;

    fn test_agent(name: &str) -> Arc<Agent> {
        Arc::new(Agent::new(ProcessInfo {
            host: "localhost".into(),
            procid: 1,
            procname: name.into(),
        }))
    }

    #[test]
    fn get_put_round_trip() {
        let server = KvServer::start(2, test_agent("kvserver")).expect("server starts");
        let mut client = KvClient::connect(server.addr()).expect("client connects");
        assert!(!client.get("missing").expect("get ok").hit);
        client.put("k", b"hello").expect("put ok");
        let got = client.get("k").expect("get ok");
        assert!(got.hit);
        assert_eq!(got.value, b"hello");
        assert_eq!(server.ops_served(), 3);
        server.shutdown();
    }

    #[test]
    fn keys_spread_across_shards_consistently() {
        for key in ["a", "b", "longer-key", ""] {
            let s = shard_of(key, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(key, 4), "placement is stable");
        }
    }

    #[test]
    fn malformed_request_closes_connection() {
        let server = KvServer::start(1, test_agent("kvserver")).expect("server starts");
        let mut conn = TcpStream::connect(server.addr()).expect("connects");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout set");
        write_frame(&mut conn, &[0xff, 0xff, 0xff, 0xff]).expect("write ok");
        assert!(
            read_frame(&mut conn).is_err(),
            "server closes rather than answering garbage"
        );
        server.shutdown();
    }

    #[test]
    fn load_gen_drives_traffic() {
        let server = KvServer::start(2, test_agent("kvserver")).expect("server starts");
        let gen = LoadGen::start(server.addr(), 3, test_agent("kvclient")).expect("load starts");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while gen.ops_done() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        gen.stop();
        assert!(gen.ops_done() >= 50, "load generator made progress");
        server.shutdown();
    }
}
