//! Instrumented thread and channel primitives.
//!
//! Real systems branch requests across threads (`spawn`) and hand work
//! between threads over queues (channels). For the happened-before join to
//! see through those boundaries, baggage must [`split`] where execution
//! branches and [`join`] where it merges (paper §5). These wrappers do
//! both automatically:
//!
//! - [`spawn`] splits the caller's current baggage and attaches the half
//!   to the new thread; [`JoinHandle::join`] merges the thread's final
//!   baggage back into *the joining thread's* baggage.
//! - [`channel`] ships a split of the sender's baggage alongside every
//!   message; `recv` joins it into the receiver's current baggage before
//!   returning the message.
//!
//! [`split`]: pivot_baggage::Baggage::split
//! [`join`]: pivot_baggage::Baggage::join

use std::sync::mpsc;
use std::time::Duration;

use pivot_baggage::Baggage;

use crate::ctx;

/// Handle to an instrumented thread (see [`spawn`]).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<(T, Baggage)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and merges its final baggage into
    /// the current thread's baggage (the paper's join point).
    ///
    /// If the thread panicked its baggage is lost with it and the panic
    /// payload is returned, as with [`std::thread::JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        let (value, bag) = self.inner.join()?;
        ctx::merge(bag);
        Ok(value)
    }

    /// Returns `true` once the thread has exited.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a thread carrying a split of the current baggage.
///
/// The closure runs with the split attached as its thread-local baggage;
/// whatever advice packed into it during the thread's lifetime flows back
/// at [`JoinHandle::join`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let bag = ctx::branch();
    let inner = std::thread::spawn(move || {
        let scope = ctx::attach(bag);
        let value = f();
        (value, scope.detach())
    });
    JoinHandle { inner }
}

/// The sending half of an instrumented channel (see [`channel`]).
pub struct Sender<T> {
    inner: mpsc::Sender<(Baggage, T)>,
}

// Derived `Clone` would require `T: Clone`; the sender itself never
// clones messages.
impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, attaching a split of the current thread's baggage.
    pub fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
        self.inner
            .send((ctx::branch(), value))
            .map_err(|mpsc::SendError((_, v))| mpsc::SendError(v))
    }
}

/// The receiving half of an instrumented channel (see [`channel`]).
pub struct Receiver<T> {
    inner: mpsc::Receiver<(Baggage, T)>,
}

impl<T> Receiver<T> {
    /// Receives the next message, joining the baggage that travelled with
    /// it into the current thread's baggage (the merge point).
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        let (bag, value) = self.inner.recv()?;
        ctx::merge(bag);
        Ok(value)
    }

    /// Non-blocking [`Receiver::recv`].
    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        let (bag, value) = self.inner.try_recv()?;
        ctx::merge(bag);
        Ok(value)
    }

    /// [`Receiver::recv`] with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, mpsc::RecvTimeoutError> {
        let (bag, value) = self.inner.recv_timeout(timeout)?;
        ctx::merge(bag);
        Ok(value)
    }
}

/// Creates an instrumented unbounded mpsc channel: baggage splits at
/// `send` and joins at `recv`, so causality follows messages between
/// threads exactly as it follows requests between processes.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::{PackMode, QueryId};
    use pivot_model::{Tuple, Value};

    const Q: QueryId = QueryId(7);

    fn t(v: i64) -> Tuple {
        Tuple::from_iter([Value::I64(v)])
    }

    #[test]
    fn spawn_join_carries_baggage_both_ways() {
        let _scope = ctx::attach(Baggage::new());
        ctx::with_baggage(|b| b.pack(Q, &PackMode::All, [t(1)]));
        let handle = spawn(|| {
            // The spawned thread sees the pre-branch tuple...
            assert_eq!(ctx::with_baggage(|b| b.tuple_count(Q)), 1);
            // ...and packs one of its own.
            ctx::with_baggage(|b| b.pack(Q, &PackMode::All, [t(2)]));
            42
        });
        assert_eq!(handle.join().expect("thread ok"), 42);
        assert_eq!(ctx::with_baggage(|b| b.tuple_count(Q)), 2);
    }

    #[test]
    fn channel_send_recv_carries_baggage() {
        let (tx, rx) = channel::<u32>();
        let _scope = ctx::attach(Baggage::new());
        ctx::with_baggage(|b| b.pack(Q, &PackMode::All, [t(5)]));
        let worker = std::thread::spawn(move || {
            let scope = ctx::attach(Baggage::new());
            let v = rx.recv().expect("message arrives");
            let count = ctx::with_baggage(|b| b.tuple_count(Q));
            drop(scope);
            (v, count)
        });
        tx.send(10).expect("send ok");
        let (v, count) = worker.join().expect("worker ok");
        assert_eq!(v, 10);
        assert_eq!(count, 1, "receiver merged sender's baggage");
        // The sender still holds its own half.
        assert_eq!(ctx::with_baggage(|b| b.tuple_count(Q)), 1);
    }

    #[test]
    fn sibling_branches_stay_isolated_until_join() {
        let _scope = ctx::attach(Baggage::new());
        let h1 = spawn(|| {
            ctx::with_baggage(|b| b.pack(Q, &PackMode::All, [t(1)]));
        });
        let h2 = spawn(|| {
            // Sibling cannot see h1's pack even if h1 already ran.
            assert_eq!(ctx::with_baggage(|b| b.tuple_count(Q)), 0);
            ctx::with_baggage(|b| b.pack(Q, &PackMode::All, [t(2)]));
        });
        h1.join().expect("h1 ok");
        h2.join().expect("h2 ok");
        assert_eq!(ctx::with_baggage(|b| b.tuple_count(Q)), 2);
    }
}
