//! Crash-recovery end-to-end tests: queries installed over real TCP, an
//! agent killed mid-workload (no `Goodbye`, no final flush), a
//! replacement re-syncing via the install epoch, and results converging
//! back to the fault-free baseline without double-counting.

use std::time::{Duration, Instant};

use pivot_baggage::Baggage;
use pivot_core::ProcessInfo;
use pivot_live::service::define_kv_tracepoints;
use pivot_live::{tracepoint, ConnStatus, LiveAgent, LiveFrontend, ReconnectPolicy};
use pivot_model::Value;

const Q1_LIVE: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.client \
     Select req.client, COUNT, SUM(exec.bytes)";

const Q_SHARD: &str = "From exec In KvShard.execute \
     GroupBy exec.shard \
     Select exec.shard, COUNT";

fn info(procname: &str, procid: u64) -> ProcessInfo {
    ProcessInfo {
        host: "localhost".into(),
        procid,
        procname: procname.into(),
    }
}

/// Drives `n` KV requests through the client and server agents on this
/// thread, tagging each with `client` so runs are distinguishable in the
/// grouped output.
fn drive_requests(client: &LiveAgent, server: &LiveAgent, client_tag: &str, n: u64) {
    for i in 0..n {
        let scope = pivot_live::attach(Baggage::new());
        tracepoint(
            client.agent(),
            "KvClient.issueRequest",
            &[
                ("client", Value::str(client_tag)),
                ("op", Value::str("put")),
                ("key", Value::Str(format!("key-{i:04}").into())),
            ],
        );
        tracepoint(
            server.agent(),
            "KvShard.execute",
            &[
                ("shard", Value::I64((i % 4) as i64)),
                ("op", Value::str("put")),
                ("bytes", Value::I64(100)),
                ("hit", Value::Bool(true)),
            ],
        );
        drop(scope);
    }
}

/// Blocks until the Q1 group for `tag` reports exactly `count`, or panics
/// at the deadline.
fn wait_for_count(fe: &mut LiveFrontend, q: &pivot_core::QueryHandle, tag: &str, count: f64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = fe
            .results(q)
            .rows()
            .iter()
            .find(|r| matches!(&r.values[0], Value::Str(s) if s.as_ref() == tag))
            .and_then(|r| r.values[1].as_f64());
        if got == Some(count) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "group {tag} never reached COUNT {count} (last: {got:?})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killed_agent_resyncs_all_queries_within_one_epoch() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    let q1 = fe.install_named("Q1", Q1_LIVE).expect("Q1 installs");
    let qs = fe
        .install_named("QSHARD", Q_SHARD)
        .expect("QSHARD installs");
    let epoch = fe.bus().epoch();

    let interval = Duration::from_millis(10);
    let client = LiveAgent::connect(fe.addr(), info("kvclient", 2), interval).expect("client");
    let server1 = LiveAgent::connect(fe.addr(), info("kvserver", 1), interval).expect("server");
    assert!(fe.wait_for_agents(2, Duration::from_secs(10)));
    // Both queries arrive in a single epoch-tagged Sync answering Hello.
    assert!(client.wait_for_epoch(epoch, Duration::from_secs(10)));
    assert!(server1.wait_for_epoch(epoch, Duration::from_secs(10)));
    assert!(server1.agent().registry().has_query(q1.id));
    assert!(server1.agent().registry().has_query(qs.id));

    // Phase 1: a tagged workload, flushed durably before the crash.
    drive_requests(&client, &server1, "client-pre", 40);
    server1.flush_now();
    wait_for_count(&mut fe, &q1, "client-pre", 40.0);

    // Crash: no Goodbye, no final flush. The server must tally a *lost*
    // peer, not an orderly close.
    server1.abort();
    assert_eq!(server1.status(), ConnStatus::Lost);
    assert!(server1.status().is_error());
    let deadline = Instant::now() + Duration::from_secs(10);
    while fe.bus().peers_lost() < 1 {
        assert!(Instant::now() < deadline, "lost peer is tallied");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Restart: same host/procid, fresh incarnation. One Hello/Sync round
    // trip re-installs the *entire* query set at the current epoch.
    let server2 = LiveAgent::connect(fe.addr(), info("kvserver", 1), interval).expect("restart");
    assert!(
        server2.wait_for_epoch(fe.bus().epoch(), Duration::from_secs(10)),
        "restarted agent re-syncs within one epoch"
    );
    assert!(server2.agent().registry().has_query(q1.id));
    assert!(server2.agent().registry().has_query(qs.id));

    // Phase 2: post-recovery workload converges to the fault-free
    // baseline — exactly 40 tuples, and the pre-crash group is intact
    // (nothing double-counted across the restart).
    drive_requests(&client, &server2, "client-post", 40);
    server2.flush_now();
    wait_for_count(&mut fe, &q1, "client-post", 40.0);
    wait_for_count(&mut fe, &q1, "client-pre", 40.0);
    assert_eq!(fe.bus().peers_closed(), 0);

    client.shutdown();
    server2.shutdown();
}

#[test]
fn severed_connection_reconnects_and_resyncs() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    fe.install_named("Q1", Q1_LIVE).expect("installs");

    let agent = LiveAgent::connect_with(
        fe.addr(),
        info("kvserver", 1),
        Duration::from_millis(10),
        ReconnectPolicy::new(42),
    )
    .expect("agent connects");
    assert!(agent.wait_for_epoch(fe.bus().epoch(), Duration::from_secs(10)));

    // Cut every connection without a Goodbye (a network fault, not a
    // shutdown): the agent must notice and come back on its own.
    fe.bus().sever();
    let deadline = Instant::now() + Duration::from_secs(10);
    while agent.reconnects() < 1 || agent.status() != ConnStatus::Connected {
        assert!(
            Instant::now() < deadline,
            "agent reconnects (status {:?}, {} reconnects)",
            agent.status(),
            agent.reconnects()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fe.bus().peers_lost(), 1);

    // The re-established session carries live commands again: a new
    // install reaches the reconnected agent.
    let qs = fe.install_named("QSHARD", Q_SHARD).expect("installs");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !agent.agent().registry().has_query(qs.id) {
        assert!(Instant::now() < deadline, "post-reconnect install arrives");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Orderly close from the agent side is *not* a lost peer.
    agent.shutdown();
    assert_eq!(agent.status(), ConnStatus::Closed);
    let deadline = Instant::now() + Duration::from_secs(10);
    while fe.bus().peers_closed() < 1 {
        assert!(Instant::now() < deadline, "orderly close is tallied");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fe.bus().peers_lost(), 1, "shutdown never counts as lost");
}

const Q_RAW: &str = "From exec In KvShard.execute Select exec.shard, exec.bytes";

/// Fires `n` shard executions on this thread (no client half needed for
/// the single-tracepoint streaming query).
fn drive_shard(server: &LiveAgent, n: u64) {
    for i in 0..n {
        let scope = pivot_live::attach(Baggage::new());
        tracepoint(
            server.agent(),
            "KvShard.execute",
            &[
                ("shard", Value::I64((i % 4) as i64)),
                ("op", Value::str("put")),
                ("bytes", Value::I64((i % 7) as i64)),
                ("hit", Value::Bool(true)),
            ],
        );
        drop(scope);
    }
}

#[test]
fn long_partition_keeps_outage_buffering_bounded() {
    const CAP: usize = 32;
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    let qr = fe.install_named("QRAW", Q_RAW).expect("QRAW installs");

    // A long first backoff guarantees a window in which the agent is
    // partitioned (flushes skipped, tuples accumulating locally).
    let policy = ReconnectPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(400),
        max_delay: Duration::from_millis(400),
        jitter_seed: 7,
    };
    let server = LiveAgent::connect_with(
        fe.addr(),
        info("kvserver", 1),
        Duration::from_millis(5),
        policy,
    )
    .expect("server connects");
    server.agent().set_row_cap(CAP);
    assert!(server.wait_for_epoch(fe.bus().epoch(), Duration::from_secs(10)));

    // Phase 1: a small workload delivered normally.
    drive_shard(&server, 10);
    server.flush_now();
    let deadline = Instant::now() + Duration::from_secs(30);
    while fe.results(&qr).raw_rows().len() < 10 {
        assert!(Instant::now() < deadline, "phase-1 rows arrive");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Partition: cut the connections and wait until the agent notices
    // (from then on the report loop skips flushes entirely).
    fe.bus().sever();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.status() != ConnStatus::Reconnecting {
        assert!(
            Instant::now() < deadline,
            "agent notices the partition (status {:?})",
            server.status()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // A long-outage workload, far past the row cap: the outage buffer
    // must stay bounded, shedding oldest rows instead of growing.
    drive_shard(&server, 500);
    assert_eq!(server.agent().emitted_for(qr.id), 510);
    assert_eq!(server.agent().buffered_rows(qr.id), CAP);
    assert_eq!(server.agent().shed_for(qr.id), 500 - CAP as u64);

    // Recovery: the backoff elapses, the agent reconnects on its own,
    // and the next flush delivers the surviving rows *and* the shed
    // count, so the frontend's loss envelope owns up to the outage.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.status() != ConnStatus::Connected {
        assert!(Instant::now() < deadline, "agent reconnects after backoff");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.flush_now();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let res = fe.results(&qr);
        if res.raw_rows().len() == 10 + CAP && res.loss().tuples_shed == 500 - CAP as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shed accounting converges (rows {}, shed {})",
            res.raw_rows().len(),
            res.loss().tuples_shed
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let loss = fe.results(&qr).loss();
    assert_eq!(loss.tuples_delivered, 10 + CAP as u64);
    // Nothing was silently dropped: emitted == delivered + shed.
    assert_eq!(loss.tuples_dropped, 0);

    server.shutdown();
}

#[test]
fn reconnect_disabled_surfaces_lost_status() {
    let fe = LiveFrontend::start().expect("frontend starts");
    let agent = LiveAgent::connect_with(
        fe.addr(),
        info("fragile", 7),
        Duration::from_millis(10),
        ReconnectPolicy::disabled(),
    )
    .expect("agent connects");
    assert!(fe.wait_for_agents(1, Duration::from_secs(10)));

    fe.bus().sever();
    let deadline = Instant::now() + Duration::from_secs(10);
    while agent.status() != ConnStatus::Lost {
        assert!(
            Instant::now() < deadline,
            "disconnection surfaces as an error, not a silent exit (status {:?})",
            agent.status()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(agent.status().is_error());
}
