//! End-to-end tests of the live runtime: a real multi-threaded KV
//! service, real TCP for both the data path and the Pivot Tracing bus,
//! and queries installed/uninstalled while load is running.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pivot_core::frontend::InstallError;
use pivot_core::ProcessInfo;
use pivot_live::service::{define_kv_tracepoints, KvClient, KvServer, LoadGen};
use pivot_live::{LiveAgent, LiveFrontend};
use pivot_model::Value;

const Q1_LIVE: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.client \
     Select req.client, COUNT, SUM(exec.bytes)";

fn info(procname: &str, procid: u64) -> ProcessInfo {
    ProcessInfo {
        host: "localhost".into(),
        procid,
        procname: procname.into(),
    }
}

/// A full live deployment inside one test: frontend + TCP bus, a KV
/// server process agent, and a client process agent driving load.
struct Stack {
    fe: LiveFrontend,
    server_live: LiveAgent,
    client_live: LiveAgent,
    server: KvServer,
    load: LoadGen,
}

impl Stack {
    fn start(num_shards: usize, num_clients: usize) -> Stack {
        let mut fe = LiveFrontend::start().expect("frontend starts");
        define_kv_tracepoints(fe.frontend_mut());
        let interval = Duration::from_millis(20);
        let server_live =
            LiveAgent::connect(fe.addr(), info("kvserver", 1), interval).expect("server agent");
        let client_live =
            LiveAgent::connect(fe.addr(), info("kvclient", 2), interval).expect("client agent");
        assert!(
            fe.wait_for_agents(2, Duration::from_secs(10)),
            "both agents register"
        );
        let server =
            KvServer::start(num_shards, Arc::clone(server_live.agent())).expect("kv server starts");
        let load = LoadGen::start(server.addr(), num_clients, Arc::clone(client_live.agent()))
            .expect("load starts");
        Stack {
            fe,
            server_live,
            client_live,
            server,
            load,
        }
    }

    fn stop(self) {
        self.load.stop();
        self.server.shutdown();
        self.server_live.shutdown();
        self.client_live.shutdown();
    }
}

#[test]
fn q1_streams_grouped_results_over_tcp() {
    let mut stack = Stack::start(4, 3);
    let q1 = stack.fe.install(Q1_LIVE).expect("Q1 installs");

    assert!(
        stack.fe.wait_for_rows(&q1, 2, Duration::from_secs(30)),
        "grouped rows from at least two clients arrive over TCP"
    );

    let results = stack.fe.results(&q1).clone();
    let rows = results.rows();
    assert!(rows.len() >= 2, "per-client groups: {rows:?}");
    for row in &rows {
        // Select order: client, COUNT, SUM(bytes).
        let client = match &row.values[0] {
            Value::Str(s) => s.to_string(),
            other => panic!("group key should be a client name, got {other:?}"),
        };
        assert!(client.starts_with("client-"), "key is {client}");
        let count = row.values[1].as_f64().expect("COUNT is numeric");
        assert!(count >= 1.0);
    }
    // Streaming: results arrive across multiple report intervals, each
    // timestamped with the agent's wall clock.
    assert!(
        !results.series().is_empty(),
        "per-interval series is populated"
    );

    // Uninstall propagates over TCP: agents unweave.
    stack.fe.uninstall(&q1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while stack.server_live.agent().registry().woven_count() > 0 {
        assert!(Instant::now() < deadline, "server agent unweaves");
        std::thread::sleep(Duration::from_millis(5));
    }
    stack.stop();
}

#[test]
fn late_joining_agent_receives_installed_queries() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    let _q = fe.install(Q1_LIVE).expect("installs");

    // This agent connects *after* the install; the bus replays it.
    let late = LiveAgent::connect(fe.addr(), info("late", 9), Duration::from_millis(20))
        .expect("late agent connects");
    let deadline = Instant::now() + Duration::from_secs(10);
    while late.agent().registry().woven_count() == 0 {
        assert!(Instant::now() < deadline, "late joiner gets the query");
        std::thread::sleep(Duration::from_millis(5));
    }
    late.shutdown();
}

#[test]
fn survives_install_uninstall_churn_under_load() {
    let mut stack = Stack::start(2, 2);
    let ops_before = stack.load.ops_done();

    for round in 0..8 {
        let name = format!("churn-{round}");
        let handle = stack
            .fe
            .install_named(&name, Q1_LIVE)
            .expect("install during load");
        std::thread::sleep(Duration::from_millis(15));
        stack.fe.poll();
        stack.fe.uninstall(&handle);
    }

    // The service kept serving throughout the churn.
    let deadline = Instant::now() + Duration::from_secs(20);
    while stack.load.ops_done() <= ops_before {
        assert!(Instant::now() < deadline, "load progressed during churn");
        std::thread::sleep(Duration::from_millis(5));
    }

    // After the churn a fresh install still works end to end.
    let q = stack.fe.install(Q1_LIVE).expect("post-churn install");
    assert!(
        stack.fe.wait_for_rows(&q, 1, Duration::from_secs(30)),
        "results still flow after churn"
    );
    stack.stop();
}

#[test]
fn baggage_rides_kv_request_headers() {
    // No query installed: a client's baggage still round-trips through
    // the server (empty baggage = 0 bytes on the wire, paper §6.3), and
    // with a query installed the client-side pack survives the socket
    // hop and shard handoff to reach KvShard.execute.
    let mut stack = Stack::start(2, 1);
    let q = stack.fe.install(Q1_LIVE).expect("installs");
    // The weave command travels asynchronously; wait until both process
    // agents have applied it before driving the traced request.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stack.client_live.agent().registry().woven_count() == 0
        || stack.server_live.agent().registry().woven_count() == 0
    {
        assert!(Instant::now() < deadline, "agents weave the query");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Drive one request from this test thread with its own baggage.
    let scope = pivot_live::attach(pivot_baggage::Baggage::new());
    pivot_live::tracepoint(
        stack.client_live.agent(),
        "KvClient.issueRequest",
        &[
            ("client", Value::str("client-test")),
            ("op", Value::str("put")),
            ("key", Value::str("e2e-key")),
        ],
    );
    let mut kv = KvClient::connect(stack.server.addr()).expect("client connects");
    kv.put("e2e-key", b"payload").expect("put ok");
    drop(scope);

    stack.server_live.flush_now();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut seen = false;
    while !seen {
        assert!(Instant::now() < deadline, "client-test group appears");
        std::thread::sleep(Duration::from_millis(10));
        seen = stack
            .fe
            .results(&q)
            .rows()
            .iter()
            .any(|r| matches!(&r.values[0], Value::Str(s) if s.as_ref() == "client-test"));
    }
    stack.stop();
}

#[test]
fn verifier_rejects_ill_typed_live_query_before_broadcast() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    let agent = LiveAgent::connect(fe.addr(), info("kvserver", 1), Duration::from_millis(20))
        .expect("agent connects");
    assert!(fe.wait_for_agents(1, Duration::from_secs(10)));

    // Compiles but can never evaluate: `&&` over a number. The PR-1
    // static verifier rejects it at install time...
    let err = fe
        .install(
            "From exec In KvShard.execute \
             Where exec.op && 5 \
             Select COUNT",
        )
        .expect_err("verifier rejects");
    assert!(matches!(err, InstallError::Rejected(_)), "got {err:?}");

    // ...and nothing was broadcast: the agent never weaves.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(agent.agent().registry().woven_count(), 0);
    agent.shutdown();
}
