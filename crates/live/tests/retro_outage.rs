//! Retro flush across a live outage: hindsight frames obey the same
//! bounded-outage-buffer discipline as ordinary reports (PR 5). While
//! the connection is down — or the peer has not yet proven it speaks
//! v7 — flushed retro reports stay in the agent's bounded pending queue,
//! shedding oldest-first under pressure; recovery delivers the survivors
//! with their original ring sequence numbers, never a duplicate.
//!
//! The server side is a raw [`TcpListener`] (as in `version_latch`) so
//! the test controls exactly when the connection dies and which version
//! each server frame advertises.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use pivot_baggage::Baggage;
use pivot_core::{set_trace, ProcessInfo, RetroReport, TriggerKind};
use pivot_live::bus::{ConnStatus, LiveAgent, ReconnectPolicy};
use pivot_live::frame::{read_frame, write_frame};
use pivot_live::proto::{
    decode_message_versioned, encode_message_v, Message, MIN_PROTO_VERSION, PROTO_VERSION,
};
use pivot_model::Value;

/// Accepts one connection and consumes its `Hello`.
fn accept_hello(listener: &TcpListener) -> TcpStream {
    let (mut conn, _) = listener.accept().expect("agent connects");
    let payload = read_frame(&mut conn).expect("hello frame");
    let (_, Message::Hello(_)) = decode_message_versioned(&payload).expect("hello decodes") else {
        panic!("first frame is not Hello");
    };
    conn
}

/// Sends an empty `Sync` stamped with exactly `version`.
fn send_sync_at(conn: &mut TcpStream, version: u8) {
    let sync = Message::Sync {
        epoch: 1,
        queries: Vec::new(),
        budgets: Vec::new(),
    };
    write_frame(conn, &encode_message_v(&sync, version)).expect("sync frame writes");
}

/// Polls until `f()` holds or the deadline passes.
fn wait_until(mut f: impl FnMut() -> bool) -> bool {
    for _ in 0..600 {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Reads the next frame and requires it to be a `Retro`.
fn read_retro(conn: &mut TcpStream) -> RetroReport {
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let payload = read_frame(conn).expect("retro frame arrives");
    match decode_message_versioned(&payload) {
        Ok((_, Message::Retro(report))) => report,
        other => panic!("expected a Retro frame, got {other:?}"),
    }
}

/// Asserts no frame arrives on `conn` within a short window.
fn assert_wire_silent(conn: &mut TcpStream) {
    conn.set_read_timeout(Some(Duration::from_millis(150)))
        .expect("timeout sets");
    assert!(
        read_frame(conn).is_err(),
        "no frame should be on the wire yet"
    );
}

/// Records one event into the agent's hindsight ring, tagged `request`.
fn record(agent: &LiveAgent, request: u64, t: u64) {
    let mut bag = Baggage::new();
    set_trace(&mut bag, request);
    agent
        .agent()
        .invoke("Retro.live", &mut bag, t, &[("v", Value::U64(t))]);
}

#[test]
fn retro_flush_across_outage_is_bounded_and_never_duplicated() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("addr");

    let agent = LiveAgent::connect_with(
        addr,
        ProcessInfo {
            host: "retro-live-host".into(),
            procid: 9,
            procname: "retro-live".into(),
        },
        Duration::from_secs(3600), // reporter stays out of the way
        // A wide, un-doubling backoff so the disconnected window below is
        // long enough to observe deterministically.
        ReconnectPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(400),
            max_delay: Duration::from_millis(400),
            jitter_seed: 3,
        },
    )
    .expect("agent connects");
    let mut conn = accept_hello(&listener);

    let inner = agent.agent();
    inner.set_retro(true);
    inner.set_retro_cap(16);
    inner.set_retro_pending_cap(4);

    // Phase 1: a flush while the peer has only proven the negotiation
    // floor. Retro frames are v7-only and never down-encoded, so the
    // report stays in the pending queue — same discipline as an outage.
    record(&agent, 1, 1);
    record(&agent, 1, 2);
    assert!(inner.trigger_retro(TriggerKind::Fault, 1, 3));
    assert_eq!(agent.negotiated_version(), MIN_PROTO_VERSION);
    agent.flush_now();
    assert_wire_silent(&mut conn);
    assert_eq!(inner.retro_unflushed(), 2, "report still pending");

    // The peer proves v7: the pending report drains on the next flush.
    send_sync_at(&mut conn, PROTO_VERSION);
    assert!(wait_until(|| agent.negotiated_version() == PROTO_VERSION));
    agent.flush_now();
    let r = read_retro(&mut conn);
    assert_eq!((r.request, r.seq, r.events.len()), (1, 0, 2));
    assert_eq!(inner.retro_unflushed(), 0);

    // Phase 2: the connection dies without a Goodbye. Triggers keep
    // firing during the outage; the pending queue is bounded at 4
    // events, so the oldest report (request 2, two events) is shed when
    // request 3's three-event flush lands.
    drop(conn);
    assert!(
        wait_until(|| agent.status() == ConnStatus::Reconnecting),
        "agent noticed the dead connection"
    );
    record(&agent, 2, 10);
    record(&agent, 2, 11);
    assert!(inner.trigger_retro(TriggerKind::Fault, 2, 12));
    record(&agent, 3, 13);
    record(&agent, 3, 14);
    record(&agent, 3, 15);
    assert!(inner.trigger_retro(TriggerKind::Fault, 3, 16));

    // A flush while disconnected is a no-op: nothing written into a dead
    // socket, the surviving report keeps waiting.
    agent.flush_now();
    assert_eq!(inner.retro_unflushed(), 3);
    assert_eq!(inner.retro_counters().shed, 2, "oldest report shed");

    // Phase 3: recovery. The latch restarted at the floor, so the
    // survivor still waits until the *new* session proves v7 — a
    // restarted server may be older than its previous incarnation.
    let mut conn = accept_hello(&listener);
    assert!(wait_until(|| agent.reconnects() == 1));
    assert_eq!(agent.negotiated_version(), MIN_PROTO_VERSION);
    agent.flush_now();
    assert_wire_silent(&mut conn);

    send_sync_at(&mut conn, PROTO_VERSION);
    assert!(wait_until(|| agent.negotiated_version() == PROTO_VERSION));
    agent.flush_now();
    let r = read_retro(&mut conn);
    // Request 3's report, with its original ring seq (2): seq 1 was the
    // shed report, and the gap is the frontend's record of that shed —
    // never re-numbered, never re-sent.
    assert_eq!((r.request, r.seq, r.events.len()), (3, 2, 3));
    let times: Vec<u64> = r.events.iter().map(|e| e.time).collect();
    assert_eq!(times, vec![13, 14, 15]);

    // Every recorded event is in exactly one bucket: 7 recorded ==
    // 5 flushed (2 + 3 delivered) + 2 shed + 0 sampled_out + 0 in ring.
    let c = inner.retro_counters();
    assert_eq!(c.recorded, 7);
    assert_eq!(c.flushed, 5);
    assert_eq!(c.shed, 2);
    assert_eq!(c.sampled_out, 0);
    assert!(c.balanced_with(0));
    assert_eq!(inner.retro_unflushed(), 0);

    agent.abort();
}
