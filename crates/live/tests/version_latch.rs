//! Direct unit test for the wire-version max-latch lifecycle: the latch
//! rises monotonically *within* one connection (a v7 frame upgrades a
//! session that opened at the floor) but MUST reset to the negotiation
//! floor on reconnect — a restarted server may speak an older dialect
//! than its previous incarnation, and a stuck latch would make the agent
//! send v7-only frames (encoded row blocks, retro flushes) at a peer
//! that rejects them.
//!
//! The server side is a raw [`TcpListener`] so the test controls the
//! exact version byte of every frame — the companion skew tests
//! (`proto::tests::v6_frame_with_retro_tag_is_rejected` and friends) pin
//! what happens when the gate is bypassed.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use pivot_core::ProcessInfo;
use pivot_live::bus::{LiveAgent, ReconnectPolicy};
use pivot_live::frame::{read_frame, write_frame};
use pivot_live::proto::{
    decode_message_versioned, encode_message_v, Message, MIN_PROTO_VERSION, PROTO_VERSION,
};

/// Accepts one connection and consumes its `Hello`.
fn accept_hello(listener: &TcpListener) -> TcpStream {
    let (mut conn, _) = listener.accept().expect("agent connects");
    let payload = read_frame(&mut conn).expect("hello frame");
    let (_, Message::Hello(_)) = decode_message_versioned(&payload).expect("hello decodes") else {
        panic!("first frame is not Hello");
    };
    conn
}

/// Sends an empty `Sync` stamped with exactly `version`.
fn send_sync_at(conn: &mut TcpStream, version: u8) {
    let sync = Message::Sync {
        epoch: 1,
        queries: Vec::new(),
        budgets: Vec::new(),
    };
    let payload = encode_message_v(&sync, version);
    assert_eq!(payload[0], version, "the test controls the stamp");
    write_frame(conn, &payload).expect("sync frame writes");
}

/// Polls until `f()` holds or the deadline passes.
fn wait_until(mut f: impl FnMut() -> bool) -> bool {
    for _ in 0..400 {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn version_latch_resets_on_reconnect() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("addr");

    let agent = LiveAgent::connect_with(
        addr,
        ProcessInfo {
            host: "latch-host".into(),
            procid: 1,
            procname: "latch-test".into(),
        },
        Duration::from_secs(3600), // reporter stays out of the way
        ReconnectPolicy {
            max_attempts: 50,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter_seed: 7,
        },
    )
    .expect("agent connects");

    // Session 1: negotiation starts at the floor and max-latches upward
    // when a v7-stamped frame arrives.
    let mut conn = accept_hello(&listener);
    assert_eq!(agent.negotiated_version(), MIN_PROTO_VERSION);
    send_sync_at(&mut conn, PROTO_VERSION);
    assert!(
        wait_until(|| agent.negotiated_version() == PROTO_VERSION),
        "latch rises to the peer's advertised version"
    );

    // The connection dies without a Goodbye: the agent reconnects.
    drop(conn);
    let mut conn = accept_hello(&listener);
    assert!(
        wait_until(|| agent.reconnects() == 1),
        "agent re-established the session"
    );

    // The latch restarted at the floor — the old session's v7 knowledge
    // must not leak into the new one...
    assert_eq!(
        agent.negotiated_version(),
        MIN_PROTO_VERSION,
        "reconnect resets the max-latch to the negotiation floor"
    );

    // ...and the restarted server advertising only v6 latches to 6, not
    // back up to the dead session's 7.
    send_sync_at(&mut conn, 6);
    assert!(
        wait_until(|| agent.negotiated_version() == 6),
        "latch follows the *new* session's advertised version"
    );
    assert_eq!(agent.negotiated_version(), 6);

    agent.abort();
}
