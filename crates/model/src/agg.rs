//! Aggregation functions with combiner semantics.
//!
//! Pivot Tracing aggregators (paper §3) are `COUNT`, `SUM`, `MIN`, `MAX`,
//! and `AVERAGE`. Because queries aggregate *in three places* — inside the
//! baggage during a request, inside each process's agent, and globally at the
//! frontend — every aggregator carries a mergeable [`AggState`] whose
//! `merge` implements the paper's `Combine` function (Table 3): e.g. the
//! combiner of `COUNT` is `SUM`, and `AVERAGE` merges `(sum, count)` pairs.

use std::fmt;

use crate::codec;
use crate::value::Value;
use pivot_itc::{DecodeError, Decoder, Encoder};

/// An aggregation function named in a query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// Number of tuples.
    Count,
    /// Numeric sum.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean, merged as `(sum, count)`.
    Average,
}

impl AggFunc {
    /// Parses an aggregator name as written in queries (`SUM`, `COUNT`, …).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVERAGE" | "AVG" => Some(AggFunc::Average),
            _ => None,
        }
    }

    /// Returns a fresh accumulator for this function.
    pub fn init(self) -> AggState {
        match self {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(Num::I(0)),
            AggFunc::Min => AggState::Min(Value::Null),
            AggFunc::Max => AggState::Max(Value::Null),
            AggFunc::Average => AggState::Average { sum: 0.0, count: 0 },
        }
    }

    /// Returns the query-language spelling of this function.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Average => "AVERAGE",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An exact numeric accumulator: integral sums stay integral until a float
/// is observed.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Num {
    /// Integral accumulator.
    I(i128),
    /// Floating accumulator.
    F(f64),
}

impl Num {
    fn add_value(&mut self, v: &Value) {
        match (v, &mut *self) {
            (Value::I64(x), Num::I(acc)) => *acc += i128::from(*x),
            (Value::U64(x), Num::I(acc)) => *acc += i128::from(*x),
            (Value::F64(x), Num::I(acc)) => *self = Num::F(*acc as f64 + *x),
            (v, Num::I(acc)) if v.as_f64().is_some() => {
                *self = Num::F(*acc as f64 + v.as_f64().unwrap_or(0.0))
            }
            (v, Num::F(acc)) => *acc += v.as_f64().unwrap_or(0.0),
            _ => {}
        }
    }

    fn merge(&mut self, other: Num) {
        match (&mut *self, other) {
            (Num::I(a), Num::I(b)) => *a += b,
            (Num::I(a), Num::F(b)) => *self = Num::F(*a as f64 + b),
            (Num::F(a), Num::I(b)) => *a += b as f64,
            (Num::F(a), Num::F(b)) => *a += b,
        }
    }

    fn to_value(self) -> Value {
        match self {
            Num::I(v) => i64::try_from(v)
                .map(Value::I64)
                .unwrap_or(Value::F64(v as f64)),
            Num::F(v) => Value::F64(v),
        }
    }
}

/// A mergeable accumulator for one aggregation.
#[derive(Clone, PartialEq, Debug)]
pub enum AggState {
    /// Tuple count.
    Count(u64),
    /// Numeric sum.
    Sum(Num),
    /// Running minimum.
    Min(Value),
    /// Running maximum.
    Max(Value),
    /// Running mean as `(sum, count)`.
    Average {
        /// Sum of observed values.
        sum: f64,
        /// Number of observed values.
        count: u64,
    },
}

impl AggState {
    /// Folds one observed value into the accumulator.
    ///
    /// `COUNT` ignores the value; `SUM`/`AVERAGE` ignore non-numeric values;
    /// `MIN`/`MAX` ignore values unordered with the current extremum.
    pub fn update(&mut self, v: &Value) {
        // A travelling partial state (unpacked from baggage) is combined,
        // not re-observed — this is what makes `COUNT` over a packed count
        // behave as `SUM` of the partials.
        if let Value::Agg(s) = v {
            self.merge(s);
            return;
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(acc) => {
                if v.is_numeric() {
                    acc.add_value(v);
                }
            }
            AggState::Min(cur) => {
                if !v.is_null()
                    && (cur.is_null() || matches!(v.compare(cur), Some(std::cmp::Ordering::Less)))
                {
                    *cur = v.clone();
                }
            }
            AggState::Max(cur) => {
                if !v.is_null()
                    && (cur.is_null()
                        || matches!(v.compare(cur), Some(std::cmp::Ordering::Greater)))
                {
                    *cur = v.clone();
                }
            }
            AggState::Average { sum, count } => {
                if let Some(f) = v.as_f64() {
                    *sum += f;
                    *count += 1;
                }
            }
        }
    }

    /// Merges a partial accumulator produced elsewhere (the paper's
    /// `Combine`).
    ///
    /// Mismatched variants (protocol corruption) leave `self` unchanged.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => a.merge(*b),
            (AggState::Min(a), AggState::Min(b))
                if a.is_null()
                    || (!b.is_null() && matches!(b.compare(a), Some(std::cmp::Ordering::Less))) =>
            {
                *a = b.clone();
            }
            (AggState::Max(a), AggState::Max(b))
                if a.is_null()
                    || (!b.is_null()
                        && matches!(b.compare(a), Some(std::cmp::Ordering::Greater))) =>
            {
                *a = b.clone();
            }
            (AggState::Average { sum, count }, AggState::Average { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            _ => {}
        }
    }

    /// Finalizes the accumulator into a result value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::U64(*c),
            AggState::Sum(acc) => acc.to_value(),
            AggState::Min(v) | AggState::Max(v) => v.clone(),
            AggState::Average { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::F64(sum / *count as f64)
                }
            }
        }
    }

    /// Returns which function this accumulator belongs to.
    pub fn func(&self) -> AggFunc {
        match self {
            AggState::Count(_) => AggFunc::Count,
            AggState::Sum(_) => AggFunc::Sum,
            AggState::Min(_) => AggFunc::Min,
            AggState::Max(_) => AggFunc::Max,
            AggState::Average { .. } => AggFunc::Average,
        }
    }

    /// Encodes the accumulator for the baggage / bus wire format.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            AggState::Count(c) => {
                enc.put_u8(0);
                enc.put_varint(*c);
            }
            AggState::Sum(Num::I(v)) => {
                enc.put_u8(1);
                // i128 sums fit i64 in practice; clamp on overflow.
                enc.put_varint_i64((*v).clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64);
            }
            AggState::Sum(Num::F(v)) => {
                enc.put_u8(2);
                enc.put_f64(*v);
            }
            AggState::Min(v) => {
                enc.put_u8(3);
                codec::encode_value(v, enc);
            }
            AggState::Max(v) => {
                enc.put_u8(4);
                codec::encode_value(v, enc);
            }
            AggState::Average { sum, count } => {
                enc.put_u8(5);
                enc.put_f64(*sum);
                enc.put_varint(*count);
            }
        }
    }

    /// Decodes an accumulator.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<AggState, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => AggState::Count(dec.take_varint()?),
            1 => AggState::Sum(Num::I(i128::from(dec.take_varint_i64()?))),
            2 => AggState::Sum(Num::F(dec.take_f64()?)),
            3 => AggState::Min(codec::decode_value(dec)?),
            4 => AggState::Max(codec::decode_value(dec)?),
            5 => AggState::Average {
                sum: dec.take_f64()?,
                count: dec.take_varint()?,
            },
            t => return Err(DecodeError::BadTag("agg state", t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_counts() {
        let mut s = AggFunc::Count.init();
        for _ in 0..3 {
            s.update(&Value::str("anything"));
        }
        assert_eq!(s.finish(), Value::U64(3));
    }

    #[test]
    fn sum_stays_integral_until_float() {
        let mut s = AggFunc::Sum.init();
        s.update(&Value::I64(2));
        s.update(&Value::U64(3));
        assert_eq!(s.finish(), Value::I64(5));
        s.update(&Value::F64(0.5));
        assert_eq!(s.finish(), Value::F64(5.5));
    }

    #[test]
    fn sum_ignores_non_numeric() {
        let mut s = AggFunc::Sum.init();
        s.update(&Value::str("x"));
        s.update(&Value::I64(7));
        assert_eq!(s.finish(), Value::I64(7));
    }

    #[test]
    fn min_max_track_extrema() {
        let mut mn = AggFunc::Min.init();
        let mut mx = AggFunc::Max.init();
        for v in [Value::I64(4), Value::I64(-2), Value::I64(9)] {
            mn.update(&v);
            mx.update(&v);
        }
        assert_eq!(mn.finish(), Value::I64(-2));
        assert_eq!(mx.finish(), Value::I64(9));
    }

    #[test]
    fn average_merges_as_sum_count() {
        let mut a = AggFunc::Average.init();
        a.update(&Value::I64(1));
        a.update(&Value::I64(2));
        let mut b = AggFunc::Average.init();
        b.update(&Value::I64(6));
        a.merge(&b);
        assert_eq!(a.finish(), Value::F64(3.0));
    }

    #[test]
    fn count_combiner_is_sum() {
        // Merging partial counts must add them (paper Table 3: the combiner
        // for COUNT is SUM).
        let mut a = AggFunc::Count.init();
        a.update(&Value::Null);
        let mut b = AggFunc::Count.init();
        b.update(&Value::Null);
        b.update(&Value::Null);
        a.merge(&b);
        assert_eq!(a.finish(), Value::U64(3));
    }

    #[test]
    fn empty_aggregates_finish_sensibly() {
        assert_eq!(AggFunc::Count.init().finish(), Value::U64(0));
        assert_eq!(AggFunc::Sum.init().finish(), Value::I64(0));
        assert_eq!(AggFunc::Min.init().finish(), Value::Null);
        assert_eq!(AggFunc::Average.init().finish(), Value::Null);
    }

    #[test]
    fn encode_round_trip() {
        let mut avg = AggFunc::Average.init();
        avg.update(&Value::F64(2.5));
        let states = [
            AggState::Count(7),
            AggState::Sum(Num::I(-5)),
            AggState::Sum(Num::F(1.25)),
            AggState::Min(Value::str("a")),
            AggState::Max(Value::I64(9)),
            avg,
        ];
        for s in states {
            let mut enc = Encoder::new();
            s.encode(&mut enc);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(AggState::decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("AVERAGE"), Some(AggFunc::Average));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
