//! Binary codec for values and tuples.
//!
//! This is the wire format used both by baggage serialization (paper §5,
//! measured in Figure 10) and by the agent → frontend message bus. Encoded
//! values are tagged and self-delimiting.

use std::sync::Arc;

use pivot_itc::{DecodeError, Decoder, Encoder};

use crate::tuple::Tuple;
use crate::value::Value;

/// Encodes one value.
pub fn encode_value(v: &Value, enc: &mut Encoder) {
    match v {
        Value::Null => enc.put_u8(0),
        Value::Bool(false) => enc.put_u8(1),
        Value::Bool(true) => enc.put_u8(2),
        Value::I64(x) => {
            enc.put_u8(3);
            enc.put_varint_i64(*x);
        }
        Value::U64(x) => {
            enc.put_u8(4);
            enc.put_varint(*x);
        }
        Value::F64(x) => {
            enc.put_u8(5);
            enc.put_f64(*x);
        }
        Value::Str(s) => {
            enc.put_u8(6);
            enc.put_str(s);
        }
        Value::Agg(s) => {
            enc.put_u8(7);
            s.encode(enc);
        }
    }
}

/// Decodes one value.
pub fn decode_value(dec: &mut Decoder<'_>) -> Result<Value, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => Value::Null,
        1 => Value::Bool(false),
        2 => Value::Bool(true),
        3 => Value::I64(dec.take_varint_i64()?),
        4 => Value::U64(dec.take_varint()?),
        5 => Value::F64(dec.take_f64()?),
        6 => Value::Str(Arc::from(dec.take_str()?)),
        7 => Value::Agg(Arc::new(crate::agg::AggState::decode(dec)?)),
        t => return Err(DecodeError::BadTag("value", t)),
    })
}

/// Encodes one tuple as a length-prefixed run of values.
pub fn encode_tuple(t: &Tuple, enc: &mut Encoder) {
    enc.put_varint(t.len() as u64);
    for v in t.values() {
        encode_value(v, enc);
    }
}

/// Decodes one tuple.
pub fn decode_tuple(dec: &mut Decoder<'_>) -> Result<Tuple, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut values = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        values.push(decode_value(dec)?);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) -> Value {
        let mut enc = Encoder::new();
        encode_value(&v, &mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let out = decode_value(&mut dec).unwrap();
        assert!(dec.is_empty());
        out
    }

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(-42),
            Value::U64(u64::MAX),
            Value::F64(2.75),
            Value::str("host-A"),
            Value::str(""),
        ] {
            assert_eq!(round_trip(v.clone()), v);
        }
    }

    #[test]
    fn tuple_round_trips() {
        let t = Tuple::from_iter([Value::str("procName"), Value::I64(65536), Value::Null]);
        let mut enc = Encoder::new();
        encode_tuple(&t, &mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(decode_tuple(&mut dec).unwrap(), t);
    }

    #[test]
    fn empty_tuple_round_trips() {
        let mut enc = Encoder::new();
        encode_tuple(&Tuple::empty(), &mut enc);
        let bytes = enc.finish();
        assert_eq!(bytes, vec![0]);
        let mut dec = Decoder::new(&bytes);
        assert_eq!(decode_tuple(&mut dec).unwrap(), Tuple::empty());
    }

    #[test]
    fn bad_tag_is_an_error() {
        let mut dec = Decoder::new(&[9]);
        assert!(matches!(
            decode_value(&mut dec),
            Err(DecodeError::BadTag("value", 9))
        ));
    }
}
