//! Columnar block encoding for batches of report rows.
//!
//! Streaming reports carry many rows whose columns are highly regular:
//! shard ids repeat, timestamps count up, op names cycle through a tiny
//! set. Encoding such a batch row by row ([`codec::encode_tuple`]) spends
//! most of its bytes re-stating what the previous row already said. An
//! [`EncodedBlock`] instead stores the batch column-major and picks a
//! per-column track encoding:
//!
//! - **plain** — the values verbatim (the fallback),
//! - **RLE** — `(run_len, value)` pairs, for columns dominated by repeats,
//! - **delta** — zigzag varint deltas between consecutive integers, for
//!   counters and timestamps.
//!
//! Ragged batches (rows of unequal arity) fall back to a row-major block
//! so every batch round-trips exactly. Blocks are self-contained byte
//! buffers behind an `Arc`, so a relay can forward them — and coalesce
//! several into one report — without decoding a single value.
//!
//! Decoding is hardened the same way the rest of the wire is: row counts
//! are capped, RLE run totals are checked against the claimed row count,
//! and every malformed input returns [`DecodeError`] instead of
//! panicking or over-allocating.

use std::sync::Arc;

use pivot_itc::{DecodeError, Decoder, Encoder};

use crate::codec;
use crate::tuple::Tuple;
use crate::value::Value;

/// Upper bound on rows one block may claim (far above any real flush;
/// a hostile length cannot force a large allocation).
pub const MAX_BLOCK_ROWS: usize = 1 << 20;

/// Block kind tag: rows encoded row-major via [`codec::encode_tuple`].
const KIND_ROW_MAJOR: u8 = 0;
/// Block kind tag: rows encoded column-major with per-column tracks.
const KIND_COLUMNAR: u8 = 1;

/// Column track tag: values verbatim.
const TRACK_PLAIN: u8 = 0;
/// Column track tag: run-length encoded `(run_len, value)` pairs.
const TRACK_RLE: u8 = 1;
/// Column track tag: first value + zigzag deltas, all-`I64` column.
const TRACK_DELTA_I64: u8 = 2;
/// Column track tag: first value + zigzag deltas, all-`U64` column.
const TRACK_DELTA_U64: u8 = 3;

/// A batch of rows as one immutable encoded buffer.
///
/// The row count travels beside the bytes so accounting (report `tuples`,
/// relay window caps) never needs to decode the payload.
#[derive(Clone, PartialEq, Debug)]
pub struct EncodedBlock {
    rows: u32,
    bytes: Arc<[u8]>,
}

impl EncodedBlock {
    /// Encodes `rows` into one block, choosing columnar layout when the
    /// batch is uniform and row-major otherwise. Always round-trips
    /// exactly: `decode_into` yields the same tuples in the same order.
    pub fn encode(rows: &[Tuple]) -> EncodedBlock {
        debug_assert!(rows.len() <= MAX_BLOCK_ROWS, "flush far exceeds block cap");
        let mut enc = Encoder::with_capacity(16 + rows.len() * 8);
        let width = rows.first().map_or(0, Tuple::len);
        let uniform = width > 0 && rows.iter().all(|t| t.len() == width);
        if uniform && rows.len() >= 2 {
            enc.put_u8(KIND_COLUMNAR);
            enc.put_varint(width as u64);
            for col in 0..width {
                encode_track(rows, col, &mut enc);
            }
        } else {
            enc.put_u8(KIND_ROW_MAJOR);
            for t in rows {
                codec::encode_tuple(t, &mut enc);
            }
        }
        EncodedBlock {
            rows: rows.len() as u32,
            bytes: enc.finish().into(),
        }
    }

    /// Number of rows this block carries.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Encoded payload size in bytes (excluding the row-count header).
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Writes the block to the wire: `varint rows` + length-prefixed
    /// payload bytes. No per-value work — this is the relay's
    /// zero-decode forwarding path.
    pub fn write_wire(&self, enc: &mut Encoder) {
        enc.put_varint(u64::from(self.rows));
        enc.put_bytes(&self.bytes);
    }

    /// Reads a block from the wire. The payload is kept as opaque bytes
    /// (values are validated at [`EncodedBlock::decode_into`] time, on
    /// the consumer); the row count is bounds-checked here so a hostile
    /// header cannot inflate accounting or allocation.
    pub fn read_wire(dec: &mut Decoder<'_>) -> Result<EncodedBlock, DecodeError> {
        let rows = dec.take_varint()?;
        if rows > MAX_BLOCK_ROWS as u64 {
            return Err(DecodeError::BadTag("block row count", 0));
        }
        let bytes = dec.take_bytes()?;
        Ok(EncodedBlock {
            rows: rows as u32,
            bytes: bytes.into(),
        })
    }

    /// Decodes every row, appending to `out`. Rejects payloads whose
    /// track lengths, RLE run totals, or trailing bytes disagree with
    /// the claimed row count.
    pub fn decode_into(&self, out: &mut Vec<Tuple>) -> Result<(), DecodeError> {
        let n = self.rows as usize;
        let mut dec = Decoder::new(&self.bytes);
        match dec.take_u8()? {
            KIND_ROW_MAJOR => {
                out.reserve(n.min(4096));
                for _ in 0..n {
                    out.push(codec::decode_tuple(&mut dec)?);
                }
            }
            KIND_COLUMNAR => {
                let width = dec.take_varint()? as usize;
                if width == 0 || width > 1024 {
                    return Err(DecodeError::BadTag("block width", 0));
                }
                let mut cols: Vec<Vec<Value>> = Vec::with_capacity(width.min(64));
                for _ in 0..width {
                    cols.push(decode_track(&mut dec, n)?);
                }
                out.reserve(n.min(4096));
                for r in 0..n {
                    out.push(cols.iter().map(|c| c[r].clone()).collect());
                }
            }
            t => return Err(DecodeError::BadTag("block kind", t)),
        }
        if !dec.is_empty() {
            return Err(DecodeError::BadTag("block trailing bytes", 0));
        }
        Ok(())
    }

    /// Decodes into a fresh vector (convenience over `decode_into`).
    pub fn decode(&self) -> Result<Vec<Tuple>, DecodeError> {
        let mut out = Vec::new();
        self.decode_into(&mut out)?;
        Ok(out)
    }
}

/// Encodes one column of `rows` as the cheapest applicable track.
fn encode_track(rows: &[Tuple], col: usize, enc: &mut Encoder) {
    let n = rows.len();
    let mut runs = 1usize;
    let mut all_i64 = true;
    let mut all_u64 = true;
    for (i, t) in rows.iter().enumerate() {
        let v = t.get(col);
        if i > 0 && v != rows[i - 1].get(col) {
            runs += 1;
        }
        all_i64 &= matches!(v, Value::I64(_));
        all_u64 &= matches!(v, Value::U64(_));
    }
    // Constant and low-cardinality columns compress best as runs; pure
    // integer columns with real variation compress as deltas (repeats
    // become zero-deltas, single varint bytes); anything else verbatim.
    if runs <= n / 2 || runs == 1 {
        enc.put_u8(TRACK_RLE);
        let mut start = 0;
        enc.put_varint(runs as u64);
        while start < n {
            let v = rows[start].get(col);
            let mut end = start + 1;
            while end < n && rows[end].get(col) == v {
                end += 1;
            }
            enc.put_varint((end - start) as u64);
            codec::encode_value(v, enc);
            start = end;
        }
    } else if all_i64 {
        enc.put_u8(TRACK_DELTA_I64);
        let mut prev = 0i64;
        for t in rows {
            let Value::I64(x) = *t.get(col) else {
                unreachable!()
            };
            enc.put_varint_i64(x.wrapping_sub(prev));
            prev = x;
        }
    } else if all_u64 {
        enc.put_u8(TRACK_DELTA_U64);
        let mut prev = 0u64;
        for t in rows {
            let Value::U64(x) = *t.get(col) else {
                unreachable!()
            };
            enc.put_varint_i64(x.wrapping_sub(prev) as i64);
            prev = x;
        }
    } else {
        enc.put_u8(TRACK_PLAIN);
        for t in rows {
            codec::encode_value(t.get(col), enc);
        }
    }
}

/// Decodes one column track of exactly `n` values.
fn decode_track(dec: &mut Decoder<'_>, n: usize) -> Result<Vec<Value>, DecodeError> {
    let mut out = Vec::with_capacity(n.min(4096));
    match dec.take_u8()? {
        TRACK_PLAIN => {
            for _ in 0..n {
                out.push(codec::decode_value(dec)?);
            }
        }
        TRACK_RLE => {
            let runs = dec.take_varint()? as usize;
            if runs > n {
                return Err(DecodeError::BadTag("rle run count", 0));
            }
            for _ in 0..runs {
                let len = dec.take_varint()? as usize;
                // Run totals must land exactly on the claimed row count:
                // an overrunning run is a hostile payload, not padding.
                if len == 0 || len > n - out.len() {
                    return Err(DecodeError::BadTag("rle run overrun", 0));
                }
                let v = codec::decode_value(dec)?;
                for _ in 0..len - 1 {
                    out.push(v.clone());
                }
                out.push(v);
            }
        }
        TRACK_DELTA_I64 => {
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(dec.take_varint_i64()?);
                out.push(Value::I64(prev));
            }
        }
        TRACK_DELTA_U64 => {
            let mut prev = 0u64;
            for _ in 0..n {
                prev = prev.wrapping_add(dec.take_varint_i64()? as u64);
                out.push(Value::U64(prev));
            }
        }
        t => return Err(DecodeError::BadTag("column track", t)),
    }
    if out.len() != n {
        return Err(DecodeError::BadTag("rle run underrun", 0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_round_trip(block: &EncodedBlock) -> EncodedBlock {
        let mut enc = Encoder::new();
        block.write_wire(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = EncodedBlock::read_wire(&mut dec).expect("wire round trip");
        assert!(dec.is_empty());
        back
    }

    fn check_round_trip(rows: Vec<Tuple>) {
        let block = EncodedBlock::encode(&rows);
        assert_eq!(block.rows(), rows.len());
        assert_eq!(block.decode().expect("decodes"), rows);
        assert_eq!(wire_round_trip(&block).decode().expect("decodes"), rows);
    }

    #[test]
    fn uniform_batch_round_trips_columnar() {
        let rows: Vec<Tuple> = (0..100)
            .map(|i| {
                Tuple::from_iter([
                    Value::str("shard-3"),
                    Value::U64(1_000 + i),
                    Value::I64(-5 * i as i64),
                    Value::Bool(i % 2 == 0),
                ])
            })
            .collect();
        check_round_trip(rows);
    }

    #[test]
    fn ragged_batch_round_trips_row_major() {
        check_round_trip(vec![
            Tuple::from_iter([Value::str("a")]),
            Tuple::from_iter([Value::str("b"), Value::I64(2)]),
            Tuple::empty(),
            Tuple::from_iter([Value::Null, Value::F64(2.5), Value::U64(9)]),
        ]);
    }

    #[test]
    fn empty_and_single_round_trip() {
        check_round_trip(vec![]);
        check_round_trip(vec![Tuple::from_iter([Value::str("only"), Value::U64(1)])]);
    }

    #[test]
    fn repetitive_batch_beats_row_major_by_2x() {
        // The macro-bench shape: constant shard, cycling op, counting
        // timestamp. The whole point of the block codec is that this
        // common case shrinks well past the 2x wire-size gate.
        let rows: Vec<Tuple> = (0..512u64)
            .map(|i| {
                Tuple::from_iter([
                    Value::str("shard-07"),
                    Value::str(if i % 2 == 0 { "get" } else { "put" }),
                    Value::U64(1_000_000 + i),
                    Value::U64(128),
                ])
            })
            .collect();
        let mut row_major = Encoder::new();
        for t in &rows {
            codec::encode_tuple(t, &mut row_major);
        }
        let block = EncodedBlock::encode(&rows);
        assert!(
            block.encoded_len() * 2 <= row_major.len(),
            "columnar {} vs row-major {}",
            block.encoded_len(),
            row_major.len()
        );
        assert_eq!(block.decode().expect("decodes"), rows);
    }

    #[test]
    fn oversized_row_count_rejected() {
        let mut enc = Encoder::new();
        enc.put_varint(MAX_BLOCK_ROWS as u64 + 1);
        enc.put_bytes(&[KIND_ROW_MAJOR]);
        let bytes = enc.finish();
        assert!(matches!(
            EncodedBlock::read_wire(&mut Decoder::new(&bytes)),
            Err(DecodeError::BadTag("block row count", _))
        ));
    }

    #[test]
    fn rle_overrun_rejected() {
        // Claim 4 rows but supply one run of 100: the track decoder must
        // refuse rather than materialize the lie.
        let mut payload = Encoder::new();
        payload.put_u8(KIND_COLUMNAR);
        payload.put_varint(1); // one column
        payload.put_u8(TRACK_RLE);
        payload.put_varint(1); // one run
        payload.put_varint(100); // of length 100
        codec::encode_value(&Value::U64(7), &mut payload);
        let block = EncodedBlock {
            rows: 4,
            bytes: payload.finish().into(),
        };
        assert!(matches!(
            block.decode(),
            Err(DecodeError::BadTag("rle run overrun", _))
        ));
    }

    #[test]
    fn rle_underrun_rejected() {
        // Runs that stop short of the claimed row count are equally bad.
        let mut payload = Encoder::new();
        payload.put_u8(KIND_COLUMNAR);
        payload.put_varint(1);
        payload.put_u8(TRACK_RLE);
        payload.put_varint(1);
        payload.put_varint(2);
        codec::encode_value(&Value::U64(7), &mut payload);
        let block = EncodedBlock {
            rows: 4,
            bytes: payload.finish().into(),
        };
        assert!(matches!(
            block.decode(),
            Err(DecodeError::BadTag("rle run underrun", _))
        ));
    }

    #[test]
    fn truncations_error_not_panic() {
        let rows: Vec<Tuple> = (0..32)
            .map(|i| Tuple::from_iter([Value::str("x"), Value::U64(i)]))
            .collect();
        let block = EncodedBlock::encode(&rows);
        let mut enc = Encoder::new();
        block.write_wire(&mut enc);
        let bytes = enc.finish();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            // Either the wire header fails, or the truncated payload
            // fails at decode; neither may panic.
            if let Ok(b) = EncodedBlock::read_wire(&mut dec) {
                let _ = b.decode();
            }
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let rows: Vec<Tuple> = (0..16)
            .map(|i| Tuple::from_iter([Value::I64(i), Value::str("s")]))
            .collect();
        let block = EncodedBlock::encode(&rows);
        let mut enc = Encoder::new();
        block.write_wire(&mut enc);
        let bytes = enc.finish();
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x55;
            let mut dec = Decoder::new(&mutated);
            if let Ok(b) = EncodedBlock::read_wire(&mut dec) {
                let _ = b.decode();
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let rows = vec![
            Tuple::from_iter([Value::U64(1)]),
            Tuple::from_iter([Value::U64(2)]),
        ];
        let block = EncodedBlock::encode(&rows);
        let mut padded: Vec<u8> = block.bytes.to_vec();
        padded.push(0);
        let bad = EncodedBlock {
            rows: block.rows,
            bytes: padded.into(),
        };
        assert!(bad.decode().is_err());
    }
}
