//! Scalar expressions for `Where` predicates and `Select` projections.
//!
//! Expressions are evaluated against a [`Row`] (a named-field view over a
//! tuple). The paper's queries use field references, literals, comparisons,
//! boolean connectives, and arithmetic (e.g. Q8's
//! `response.time - request.time`).

use std::fmt;

use crate::tuple::Row;
use crate::value::Value;

/// A binary operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Returns the query-language spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not.
    Not,
}

/// Errors raised during expression evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A referenced field is absent from the row.
    UnknownField(String),
    /// An operator was applied to operands of unsupported types.
    TypeMismatch {
        /// The operator's spelling.
        op: &'static str,
        /// The left operand's type.
        left: &'static str,
        /// The right operand's type.
        right: &'static str,
    },
    /// Division or remainder by zero.
    DivideByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownField(name) => {
                write!(f, "unknown field `{name}`")
            }
            EvalError::TypeMismatch { op, left, right } => {
                write!(f, "cannot apply `{op}` to {left} and {right}")
            }
            EvalError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A scalar expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A (possibly qualified) field reference such as `incr.delta`.
    Field(String),
    /// A literal value.
    Lit(Value),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a field reference.
    pub fn field(name: impl Into<String>) -> Expr {
        Expr::Field(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Evaluates the expression against `row`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on unknown fields, type mismatches, or division
    /// by zero — advice execution treats an error as "filter this tuple out"
    /// rather than failing the request (paper §3: advice is safe).
    pub fn eval<R: Row + ?Sized>(&self, row: &R) -> Result<Value, EvalError> {
        match self {
            Expr::Field(name) => row
                .field(name)
                .cloned()
                .ok_or_else(|| EvalError::UnknownField(name.clone())),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Unary(op, e) => {
                let v = e.eval(row)?;
                eval_unary(*op, &v)
            }
            Expr::Binary(op, l, r) => {
                // Short-circuit logical connectives.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = l
                        .eval(row)?
                        .as_bool()
                        .ok_or_else(|| EvalError::TypeMismatch {
                            op: op.symbol(),
                            left: "non-bool",
                            right: "bool",
                        })?;
                    return match (op, lv) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let rv =
                                r.eval(row)?
                                    .as_bool()
                                    .ok_or_else(|| EvalError::TypeMismatch {
                                        op: op.symbol(),
                                        left: "bool",
                                        right: "non-bool",
                                    })?;
                            Ok(Value::Bool(rv))
                        }
                    };
                }
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                eval_binary(*op, &lv, &rv)
            }
        }
    }

    /// Collects every field name referenced by this expression into `out`.
    pub fn fields(&self, out: &mut Vec<String>) {
        match self {
            Expr::Field(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Unary(_, e) => e.fields(out),
            Expr::Binary(_, l, r) => {
                l.fields(out);
                r.fields(out);
            }
        }
    }

    /// Rewrites every field reference with `f`.
    pub fn map_fields(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Field(name) => Expr::Field(f(name)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_fields(f))),
            Expr::Binary(op, l, r) => {
                Expr::Binary(*op, Box::new(l.map_fields(f)), Box::new(r.map_fields(f)))
            }
        }
    }
}

/// Applies a unary operator to an already-evaluated operand.
///
/// Shared by the tree-walking [`Expr::eval`] and the bytecode VM so both
/// engines have bit-identical leaf semantics.
///
/// # Errors
///
/// Returns [`EvalError::TypeMismatch`] for unsupported operand types.
pub fn eval_unary(op: UnOp, v: &Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Neg => match v {
            Value::I64(x) => Ok(Value::I64(-x)),
            Value::U64(x) => Ok(Value::I64(-(*x as i64))),
            Value::F64(x) => Ok(Value::F64(-x)),
            other => Err(EvalError::TypeMismatch {
                op: "-",
                left: other.type_name(),
                right: "()",
            }),
        },
        UnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EvalError::TypeMismatch {
                op: "!",
                left: other.type_name(),
                right: "()",
            }),
        },
    }
}

/// Applies a non-short-circuiting binary operator to evaluated operands.
///
/// Shared by the tree-walking [`Expr::eval`] and the bytecode VM so both
/// engines have bit-identical leaf semantics. `And`/`Or` never reach this
/// function: both engines implement their short-circuit evaluation
/// (including the left-operand bool coercion error) before operand
/// evaluation.
///
/// # Errors
///
/// Returns [`EvalError`] on type mismatches or division by zero.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(l.loose_eq(r))),
        Ne => Ok(Value::Bool(!l.loose_eq(r))),
        Lt | Le | Gt | Ge => {
            let ord = l.compare(r).ok_or(EvalError::TypeMismatch {
                op: op.symbol(),
                left: l.type_name(),
                right: r.type_name(),
            })?;
            Ok(Value::Bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        Add if matches!((l, r), (Value::Str(_), Value::Str(_))) => {
            let mut s = l.as_str().unwrap_or("").to_owned();
            s.push_str(r.as_str().unwrap_or(""));
            Ok(Value::str(s))
        }
        Add | Sub | Mul | Div | Mod => {
            // Integral arithmetic when both sides are integral; f64 otherwise.
            if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
                if matches!(op, Div | Mod) && b == 0 {
                    return Err(EvalError::DivideByZero);
                }
                return Ok(Value::I64(match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => a.wrapping_div(b),
                    Mod => a.wrapping_rem(b),
                    _ => unreachable!(),
                }));
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::TypeMismatch {
                        op: op.symbol(),
                        left: l.type_name(),
                        right: r.type_name(),
                    })
                }
            };
            if matches!(op, Div | Mod) && b == 0.0 {
                return Err(EvalError::DivideByZero);
            }
            Ok(Value::F64(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!(),
            }))
        }
        // Callers lower short-circuit connectives themselves; a stray
        // non-bool application reports a mismatch instead of panicking.
        And | Or => Err(EvalError::TypeMismatch {
            op: op.symbol(),
            left: l.type_name(),
            right: r.type_name(),
        }),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Field(name) => write!(f, "{name}"),
            Expr::Lit(Value::Str(s)) => write!(f, "\"{s}\""),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Binary(op, l, r) => {
                write!(f, "({l} {} {r})", op.symbol())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Schema, Tuple};

    fn row() -> (Schema, Tuple) {
        (
            Schema::new(["e.size", "e.user", "e.time"]),
            Tuple::from_iter([Value::I64(8), Value::str("alice"), Value::U64(100)]),
        )
    }

    #[test]
    fn field_lookup_and_literals() {
        let (s, t) = row();
        let r = (&s, &t);
        assert_eq!(Expr::field("size").eval(&r).unwrap(), Value::I64(8));
        assert_eq!(Expr::lit(5).eval(&r).unwrap(), Value::I64(5));
        assert!(matches!(
            Expr::field("nope").eval(&r),
            Err(EvalError::UnknownField(_))
        ));
    }

    #[test]
    fn where_size_lt_10() {
        // Paper Table 1: `Where e.Size < 10`.
        let (s, t) = row();
        let pred = Expr::bin(BinOp::Lt, Expr::field("e.size"), Expr::lit(10));
        assert_eq!(pred.eval(&(&s, &t)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn latency_subtraction() {
        // Paper Q8: `response.time - request.time`.
        let s = Schema::new(["response.time", "request.time"]);
        let t = Tuple::from_iter([Value::U64(150), Value::U64(100)]);
        let e = Expr::bin(
            BinOp::Sub,
            Expr::field("response.time"),
            Expr::field("request.time"),
        );
        assert_eq!(e.eval(&(&s, &t)).unwrap(), Value::I64(50));
    }

    #[test]
    fn string_comparison_and_concat() {
        let (s, t) = row();
        let r = (&s, &t);
        let eq = Expr::bin(BinOp::Ne, Expr::field("user"), Expr::lit("bob"));
        assert_eq!(eq.eval(&r).unwrap(), Value::Bool(true));
        let cat = Expr::bin(BinOp::Add, Expr::field("user"), Expr::lit("!"));
        assert_eq!(cat.eval(&r).unwrap(), Value::str("alice!"));
    }

    #[test]
    fn divide_by_zero_is_error() {
        let (s, t) = row();
        let e = Expr::bin(BinOp::Div, Expr::field("size"), Expr::lit(0));
        assert_eq!(e.eval(&(&s, &t)), Err(EvalError::DivideByZero));
    }

    #[test]
    fn short_circuit_and() {
        let (s, t) = row();
        // Right side would error (unknown field) but is never evaluated.
        let e = Expr::bin(BinOp::And, Expr::lit(false), Expr::field("nope"));
        assert_eq!(e.eval(&(&s, &t)).unwrap(), Value::Bool(false));
    }

    #[test]
    fn collects_and_rewrites_fields() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::field("a.x"),
            Expr::bin(BinOp::Mul, Expr::field("b.y"), Expr::field("a.x")),
        );
        let mut fields = Vec::new();
        e.fields(&mut fields);
        assert_eq!(fields, vec!["a.x".to_owned(), "b.y".to_owned()]);
        let renamed = e.map_fields(&|f| f.replace('.', "_"));
        let mut fields2 = Vec::new();
        renamed.fields(&mut fields2);
        assert_eq!(fields2, vec!["a_x".to_owned(), "b_y".to_owned()]);
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::bin(BinOp::Lt, Expr::field("e.size"), Expr::lit(10));
        assert_eq!(e.to_string(), "(e.size < 10)");
    }
}
