//! Global string interning.
//!
//! Field names, tracepoint aliases, and other compile-time strings recur
//! constantly across schemas, advice programs, and emitted rows. Interning
//! them gives every occurrence the same allocation, so steady-state
//! execution clones an `Arc` pointer instead of copying bytes, and equality
//! checks usually resolve on pointer identity.
//!
//! The pool is append-only and process-global. Interning takes a lock and
//! is therefore meant for *compile/lowering time* (query installation),
//! not the per-event hot path — the hot path only clones already-interned
//! [`Sym`]s.

use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned, immutable string.
///
/// `Sym` dereferences to `str` and compares like a string, but two `Sym`s
/// produced by [`Sym::new`] for equal text share one allocation, so
/// equality short-circuits on pointer identity and `clone` is one atomic
/// increment.
#[derive(Clone, Eq)]
pub struct Sym(Arc<str>);

impl Sym {
    /// Interns `s`, returning the pooled symbol.
    pub fn new(s: impl AsRef<str>) -> Sym {
        Sym(intern(s.as_ref()))
    }

    /// Returns the interned text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the shared allocation (for storage in [`crate::Value`]).
    pub fn as_arc(&self) -> &Arc<str> {
        &self.0
    }

    /// Wraps an already-shared allocation without consulting the pool —
    /// the hot-path constructor for strings that came out of a
    /// [`crate::Value::Str`] (typically already pooled, so symbol
    /// equality still short-circuits on pointer identity).
    pub fn from_arc(s: &Arc<str>) -> Sym {
        Sym(Arc::clone(s))
    }
}

impl Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        // Interned symbols with equal text share one allocation; the
        // content comparison only runs for symbols built around the pool
        // (e.g. deserialized before interning).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.0.as_ref() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.0.as_ref() == *other
    }
}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash by content so `Sym` and `str` keys interoperate.
        self.0.hash(state);
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(s)
    }
}

fn pool() -> &'static Mutex<HashSet<Arc<str>>> {
    static POOL: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Interns `s` in the global pool, returning the shared allocation.
pub fn intern(s: &str) -> Arc<str> {
    let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = pool.get(s) {
        return Arc::clone(existing);
    }
    let arc: Arc<str> = Arc::from(s);
    pool.insert(Arc::clone(&arc));
    arc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_strings_share_allocation() {
        let a = Sym::new("incr.delta");
        let b = Sym::new("incr.delta");
        assert!(Arc::ptr_eq(a.as_arc(), b.as_arc()));
        assert_eq!(a, b);
        assert_eq!(a, "incr.delta");
    }

    #[test]
    fn distinct_strings_differ() {
        assert_ne!(Sym::new("a"), Sym::new("b"));
    }

    #[test]
    fn sym_hashes_like_str() {
        use std::collections::HashMap;
        let mut m: HashMap<Sym, i32> = HashMap::new();
        m.insert(Sym::new("k"), 1);
        assert_eq!(m.get(&Sym::new("k")), Some(&1));
    }
}
