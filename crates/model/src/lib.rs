//! Data model for Pivot Tracing queries.
//!
//! Pivot Tracing models tracepoint invocations as tuples of a streaming,
//! distributed dataset (paper §3). This crate provides the dynamic value
//! model those tuples are built from:
//!
//! - [`Value`] — a dynamically typed scalar (`Null`, `Bool`, `I64`, `U64`,
//!   `F64`, `Str`),
//! - [`Tuple`] and [`Schema`] — positional rows plus field-name metadata,
//! - [`AggFunc`] / [`AggState`] — the paper's aggregators (`COUNT`, `SUM`,
//!   `MIN`, `MAX`, `AVERAGE`) with *combiner* semantics so partial aggregates
//!   merge correctly across processes (paper Table 3's `Combine`),
//! - [`Expr`] — scalar expressions used by `Where` clauses and `Select`
//!   projections,
//! - a compact binary codec ([`codec`]) shared with the baggage wire format.

pub mod agg;
pub mod codec;
pub mod colblock;
pub mod expr;
pub mod intern;
pub mod tuple;
pub mod value;

pub use agg::{AggFunc, AggState};
pub use colblock::EncodedBlock;
pub use expr::{BinOp, EvalError, Expr, UnOp};
pub use intern::{intern, Sym};
pub use tuple::{GroupKey, Row, Schema, Tuple};
pub use value::Value;
