//! Tuples, schemas, and grouping keys.

use std::fmt;
use std::sync::Arc;

use crate::intern::intern;
use crate::value::Value;

/// A field-name schema shared by all tuples of one dataset.
///
/// Schemas are cheap to clone (`Arc`-backed) and provide positional lookup
/// of qualified field names such as `"incr.delta"` or plain `"delta"`.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Arc<str>]>,
}

impl Schema {
    /// Builds a schema from field names.
    pub fn new<I, S>(fields: I) -> Schema
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Schema {
            // Field names recur across every schema built for the same
            // query, so they come from the intern pool.
            fields: fields.into_iter().map(|s| intern(s.as_ref())).collect(),
        }
    }

    /// Returns an empty schema.
    pub fn empty() -> Schema {
        Schema {
            fields: Arc::from([]),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the field names.
    pub fn fields(&self) -> &[Arc<str>] {
        &self.fields
    }

    /// Returns the index of `name`.
    ///
    /// A lookup for `name` also matches a qualified field whose suffix after
    /// the final `.` equals `name`, and vice versa, so `delta` finds
    /// `incr.delta` when unambiguous.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.as_ref() == name) {
            return Some(i);
        }
        let suffix_matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.rsplit('.').next() == Some(name) || name.rsplit('.').next() == Some(f.as_ref())
            })
            .map(|(i, _)| i)
            .collect();
        match suffix_matches.as_slice() {
            [i] => Some(*i),
            _ => None,
        }
    }

    /// Concatenates two schemas (used by joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .chain(other.fields.iter())
                .cloned()
                .collect(),
        }
    }

    /// Returns a schema with every field prefixed by `alias.`.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| {
                    let base = f.rsplit('.').next().unwrap_or(f);
                    intern(&format!("{alias}.{base}"))
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.fields.iter().map(|s| s.as_ref()).collect();
        write!(f, "Schema{names:?}")
    }
}

/// Values stored inline before a tuple spills to the heap. Paper queries
/// observe a handful of exports per tracepoint, so nearly every tuple on
/// the hot path fits inline and costs no allocation.
const INLINE_CAP: usize = 4;

/// A positional row of [`Value`]s.
///
/// Short tuples (≤ [`INLINE_CAP`] values — the common case for tracepoint
/// exports and packed baggage rows) are stored inline without heap
/// allocation; longer rows spill to a boxed slice.
pub struct Tuple {
    repr: Repr,
}

enum Repr {
    Inline { len: u8, vals: [Value; INLINE_CAP] },
    Heap(Box<[Value]>),
}

fn null_array() -> [Value; INLINE_CAP] {
    std::array::from_fn(|_| Value::Null)
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Tuple {
        let boxed = values.into();
        if boxed.len() <= INLINE_CAP {
            Vec::from(boxed).into_iter().collect()
        } else {
            Tuple {
                repr: Repr::Heap(boxed),
            }
        }
    }

    /// Returns the empty tuple.
    pub fn empty() -> Tuple {
        Tuple::default()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Returns `true` if the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values().is_empty()
    }

    /// Returns the value at `idx`, or `Null` when out of range.
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values().get(idx).unwrap_or(&NULL)
    }

    /// Returns all values.
    pub fn values(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Concatenates two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        self.values()
            .iter()
            .chain(other.values().iter())
            .cloned()
            .collect()
    }

    /// Projects the tuple onto the given indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        indices.iter().map(|&i| self.get(i).clone()).collect()
    }
}

impl Default for Tuple {
    fn default() -> Tuple {
        Tuple {
            repr: Repr::Inline {
                len: 0,
                vals: null_array(),
            },
        }
    }
}

impl Clone for Tuple {
    fn clone(&self) -> Tuple {
        match &self.repr {
            Repr::Inline { len, vals } => Tuple {
                repr: Repr::Inline {
                    len: *len,
                    vals: vals.clone(),
                },
            },
            Repr::Heap(b) => Tuple {
                repr: Repr::Heap(b.clone()),
            },
        }
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the logical value sequence so inline and heap tuples with
        // equal contents collide.
        self.values().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        let mut it = iter.into_iter();
        let mut vals = null_array();
        let mut len = 0usize;
        loop {
            match it.next() {
                None => {
                    return Tuple {
                        repr: Repr::Inline {
                            len: len as u8,
                            vals,
                        },
                    }
                }
                Some(v) if len < INLINE_CAP => {
                    vals[len] = v;
                    len += 1;
                }
                Some(v) => {
                    let (lo, _) = it.size_hint();
                    let mut vec = Vec::with_capacity(INLINE_CAP + 1 + lo);
                    vec.extend(vals);
                    vec.push(v);
                    vec.extend(it);
                    return Tuple {
                        repr: Repr::Heap(vec.into_boxed_slice()),
                    };
                }
            }
        }
    }
}

/// A named-field view over values, used by expression evaluation.
pub trait Row {
    /// Looks up a field by (possibly qualified) name.
    fn field(&self, name: &str) -> Option<&Value>;
}

/// A (`Schema`, `Tuple`) pair implements [`Row`].
impl Row for (&Schema, &Tuple) {
    fn field(&self, name: &str) -> Option<&Value> {
        let idx = self.0.index_of(name)?;
        Some(self.1.get(idx))
    }
}

/// A hashable grouping key: the projection of a tuple onto `GroupBy` fields.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct GroupKey(pub Tuple);

impl GroupKey {
    /// Builds a key by projecting `tuple` onto `indices`.
    pub fn project(tuple: &Tuple, indices: &[usize]) -> GroupKey {
        GroupKey(tuple.project(indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup_qualified_and_suffix() {
        let s = Schema::new(["incr.host", "incr.delta"]);
        assert_eq!(s.index_of("incr.delta"), Some(1));
        assert_eq!(s.index_of("delta"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn ambiguous_suffix_is_rejected() {
        let s = Schema::new(["a.host", "b.host"]);
        assert_eq!(s.index_of("host"), None);
        assert_eq!(s.index_of("a.host"), Some(0));
    }

    #[test]
    fn schema_concat_and_qualify() {
        let a = Schema::new(["x"]);
        let b = Schema::new(["y"]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.index_of("y"), Some(1));
        let q = c.qualified("t");
        assert_eq!(q.index_of("t.x"), Some(0));
    }

    #[test]
    fn qualify_replaces_existing_prefix() {
        let s = Schema::new(["old.x"]).qualified("new");
        assert_eq!(s.index_of("new.x"), Some(0));
        assert_eq!(s.index_of("old.x"), None);
    }

    #[test]
    fn tuple_ops() {
        let t = Tuple::from_iter([Value::I64(1), Value::str("a")]);
        assert_eq!(t.get(0), &Value::I64(1));
        assert!(t.get(7).is_null());
        let u = t.concat(&Tuple::from_iter([Value::Bool(true)]));
        assert_eq!(u.len(), 3);
        let p = u.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::I64(1)]);
    }

    #[test]
    fn row_lookup() {
        let s = Schema::new(["cl.procName"]);
        let t = Tuple::from_iter([Value::str("HBase")]);
        let row = (&s, &t);
        assert_eq!(row.field("procName"), Some(&Value::str("HBase")));
        assert_eq!(row.field("cl.procName"), Some(&Value::str("HBase")));
    }

    #[test]
    fn inline_and_heap_tuples_behave_identically() {
        // Cross the INLINE_CAP boundary: equality, hashing, get, concat,
        // and project must not care which representation holds the values.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        for n in 0..(INLINE_CAP + 3) {
            let vals: Vec<Value> = (0..n).map(|i| Value::I64(i as i64)).collect();
            let from_iter: Tuple = vals.iter().cloned().collect();
            let from_new = Tuple::new(vals.clone());
            assert_eq!(from_iter, from_new);
            assert_eq!(from_iter.len(), n);
            assert_eq!(from_iter.values(), &vals[..]);
            let mut h1 = DefaultHasher::new();
            let mut h2 = DefaultHasher::new();
            from_iter.hash(&mut h1);
            from_new.hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish());
        }
        // Concat across the boundary spills to the heap transparently.
        let a = Tuple::from_iter((0..3).map(Value::I64));
        let b = Tuple::from_iter((3..8).map(Value::I64));
        let c = a.concat(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(c.get(7), &Value::I64(7));
        assert_eq!(c.project(&[7, 0]).values(), &[Value::I64(7), Value::I64(0)]);
    }

    #[test]
    fn group_keys_hashable() {
        use std::collections::HashSet;
        let t1 = Tuple::from_iter([Value::I64(5)]);
        let t2 = Tuple::from_iter([Value::U64(5)]);
        let mut set = HashSet::new();
        set.insert(GroupKey::project(&t1, &[0]));
        // Cross-representation equal numerics group together.
        assert!(!set.insert(GroupKey::project(&t2, &[0])));
    }
}
