//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed scalar exported by a tracepoint or computed by a
/// query expression.
///
/// Values deliberately mirror the handful of types the paper's prototype
/// passes from instrumented Java methods: booleans, integers, floating-point
/// numbers, and strings. Timestamps are carried as [`Value::U64`]
/// nanoseconds.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// Absent / unknown.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 64-bit integer (also used for timestamps).
    U64(u64),
    /// A 64-bit float.
    F64(f64),
    /// An immutable interned string.
    Str(Arc<str>),
    /// A partial aggregation state travelling inside a tuple.
    ///
    /// Produced when a packed group-by aggregate is unpacked from baggage:
    /// downstream `Emit` operations must *combine* these states (paper
    /// Table 3's `Combine`) rather than re-aggregate finished values.
    Agg(Arc<crate::agg::AggState>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns a short name for this value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Agg(_) => "agg",
        }
    }

    /// Returns the aggregation state if this is an [`Value::Agg`].
    pub fn as_agg(&self) -> Option<&crate::agg::AggState> {
        match self {
            Value::Agg(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` for numeric values.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::I64(_) | Value::U64(_) | Value::F64(_))
    }

    /// Coerces a numeric value to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Coerces an integral value to `i64` (no float truncation).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compares two values for query semantics.
    ///
    /// Numerics compare by magnitude regardless of representation; strings
    /// compare lexicographically; `Null` compares equal to `Null` and less
    /// than everything else; mismatched types are unordered.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                // Compare exactly where both are integral; via f64 otherwise.
                match (a, b) {
                    (I64(x), I64(y)) => Some(x.cmp(y)),
                    (U64(x), U64(y)) => Some(x.cmp(y)),
                    (I64(x), U64(y)) => Some(cmp_i64_u64(*x, *y)),
                    (U64(x), I64(y)) => Some(cmp_i64_u64(*y, *x).reverse()),
                    _ => a.as_f64()?.partial_cmp(&b.as_f64()?),
                }
            }
            _ => None,
        }
    }

    /// Returns `true` if the values are equal under query semantics.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

fn cmp_i64_u64(a: i64, b: u64) -> Ordering {
    if a < 0 {
        Ordering::Less
    } else {
        (a as u64).cmp(&b)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Agg(a), Agg(b)) => a == b,
            // Cross-representation numeric equality.
            (a, b) if a.is_numeric() && b.is_numeric() => a.compare(b) == Some(Ordering::Equal),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Numerics hash via a canonical form so cross-representation
        // equal values hash identically.
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::I64(v) => hash_numeric(state, *v as f64, Some(*v)),
            Value::U64(v) => {
                if let Ok(i) = i64::try_from(*v) {
                    hash_numeric(state, *v as f64, Some(i));
                } else {
                    hash_numeric(state, *v as f64, None);
                    state.write_u64(*v);
                }
            }
            Value::F64(v) => {
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    hash_numeric(state, *v, Some(*v as i64));
                } else {
                    hash_numeric(state, *v, None);
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            // Aggregation states never appear in group keys; hash via the
            // finished value so the impl stays total.
            Value::Agg(s) => {
                state.write_u8(4);
                s.finish().hash(state);
            }
        }
    }
}

fn hash_numeric<H: std::hash::Hasher>(state: &mut H, f: f64, i: Option<i64>) {
    state.write_u8(2);
    match i {
        Some(i) => {
            state.write_u8(0);
            state.write_i64(i);
        }
        None => {
            state.write_u8(1);
            state.write_u64(f.to_bits());
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Agg(s) => write!(f, "{}", s.finish()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Value {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_representation_numeric_equality() {
        assert_eq!(Value::I64(5), Value::U64(5));
        assert_eq!(Value::I64(5), Value::F64(5.0));
        assert_ne!(Value::I64(5), Value::F64(5.5));
        assert_ne!(Value::I64(-1), Value::U64(u64::MAX));
    }

    #[test]
    fn equal_numerics_hash_equal() {
        assert_eq!(hash_of(&Value::I64(5)), hash_of(&Value::U64(5)));
        assert_eq!(hash_of(&Value::I64(5)), hash_of(&Value::F64(5.0)));
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(Value::I64(1).compare(&Value::U64(2)), Some(Less));
        assert_eq!(Value::F64(2.5).compare(&Value::I64(2)), Some(Greater));
        assert_eq!(Value::str("a").compare(&Value::str("b")), Some(Less));
        assert_eq!(Value::Null.compare(&Value::I64(0)), Some(Less));
        assert_eq!(Value::str("a").compare(&Value::I64(1)), None);
    }

    #[test]
    fn i64_u64_boundary() {
        assert_eq!(
            Value::I64(i64::MAX).compare(&Value::U64(i64::MAX as u64 + 1)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::I64(-1).compare(&Value::U64(0)), Some(Ordering::Less));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn nan_is_self_equal_via_bits() {
        let nan = Value::F64(f64::NAN);
        assert_eq!(nan, nan.clone());
    }
}
