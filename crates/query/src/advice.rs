//! The advice intermediate representation (paper §3, Table 2).
//!
//! Queries compile to one **advice program** per tracepoint. Advice is a
//! straight-line list of operations — no jumps, no recursion — so
//! termination is structural (the paper's safety argument). The operations:
//!
//! | Operation | Description |
//! |---|---|
//! | `Observe` | Construct a tuple from variables exported by a tracepoint |
//! | `Unpack`  | Retrieve tuples packed by prior advice, cross-joining them |
//! | `Filter`  | Evaluate a predicate on all tuples |
//! | `Pack`    | Make tuples available to later advice via the baggage |
//! | `Emit`    | Output a tuple for global aggregation |

use std::sync::{Arc, OnceLock};

use pivot_baggage::{PackMode, QueryId};
use pivot_model::{AggFunc, Expr, Schema};

use crate::ast::TemporalFilter;

/// Where one output column of a query comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnRef {
    /// The i-th grouping key.
    Key(usize),
    /// The i-th aggregate.
    Agg(usize),
}

/// The shape of a query's emitted results.
#[derive(Clone, Debug, Default)]
pub struct OutputSpec {
    /// Grouping key expressions (explicit `GroupBy` plus non-aggregate
    /// select items).
    pub key_exprs: Vec<Expr>,
    /// Display names for the keys.
    pub key_names: Vec<String>,
    /// Aggregates: function and argument expression.
    pub aggs: Vec<(AggFunc, Expr)>,
    /// Display names for the aggregates.
    pub agg_names: Vec<String>,
    /// Output row layout in `Select` order.
    pub columns: Vec<ColumnRef>,
    /// `true` when the query has no aggregates and emits raw rows.
    pub streaming: bool,
    /// Cache for [`OutputSpec::column_names`]; populated once (at compile
    /// time via [`OutputSpec::warm`]) so report ticks never rebuild the
    /// name list. Excluded from equality.
    pub names_cache: OnceLock<Box<[String]>>,
}

// Manual impl: the lazily-filled name cache is derived data and must not
// participate in spec equality.
impl PartialEq for OutputSpec {
    fn eq(&self, other: &OutputSpec) -> bool {
        self.key_exprs == other.key_exprs
            && self.key_names == other.key_names
            && self.aggs == other.aggs
            && self.agg_names == other.agg_names
            && self.columns == other.columns
            && self.streaming == other.streaming
    }
}

impl OutputSpec {
    /// Returns the column names in `Select` order (cached after the first
    /// call).
    pub fn column_names(&self) -> &[String] {
        self.names_cache.get_or_init(|| {
            self.columns
                .iter()
                .map(|c| match c {
                    ColumnRef::Key(i) => self.key_names[*i].clone(),
                    ColumnRef::Agg(i) => self.agg_names[*i].clone(),
                })
                .collect()
        })
    }

    /// Populates the column-name cache eagerly (called by the compiler so
    /// steady-state reporting never takes the init path).
    pub fn warm(&self) {
        let _ = self.column_names();
    }
}

/// One advice operation.
#[derive(Clone, PartialEq, Debug)]
pub enum AdviceOp {
    /// Construct a tuple from the named tracepoint exports; the resulting
    /// schema qualifies each field with `alias.`.
    Observe {
        /// The alias tuples of this tracepoint are referred to by.
        alias: String,
        /// Export names to capture (unqualified).
        fields: Vec<String>,
    },
    /// Retrieve tuples packed under `slot` and cross-join them with the
    /// current tuples.
    Unpack {
        /// The baggage slot to read.
        slot: QueryId,
        /// Schema of the packed tuples.
        schema: Schema,
        /// Temporal filter to apply after unpacking (set only when the
        /// optimizer did not push it into the pack mode).
        post_filter: Option<TemporalFilter>,
    },
    /// Discard tuples for which `pred` does not evaluate to `true`.
    Filter {
        /// The predicate.
        pred: Expr,
    },
    /// Project each tuple through `exprs` and pack the results under `slot`.
    Pack {
        /// The baggage slot to write.
        slot: QueryId,
        /// Retention / aggregation mode.
        mode: PackMode,
        /// Projection expressions, one per packed column.
        exprs: Vec<Expr>,
        /// Packed column names (consumed by the matching `Unpack` schema).
        names: Vec<String>,
    },
    /// Fire a retroactive-flush trigger when any live tuple satisfies
    /// `pred` (or unconditionally when `pred` is `None`). Placed between
    /// the stage's filters and its `Emit`, so a trigger fires exactly when
    /// the query would emit for a request that also matches the trigger
    /// predicate. Fires at most once per tracepoint invocation.
    Trigger {
        /// The query requesting the retroactive flush.
        query: QueryId,
        /// Optional predicate over the emit-stage schema.
        pred: Option<Expr>,
    },
    /// Evaluate the output spec on each tuple and hand the result to the
    /// process-local aggregator.
    Emit {
        /// The query whose results these are.
        query: QueryId,
        /// The query's output shape (shared, never cloned per event).
        spec: Arc<OutputSpec>,
    },
}

/// A compiled advice program for one set of tracepoints.
#[derive(Clone, PartialEq, Debug)]
pub struct AdviceProgram {
    /// Tracepoints this program weaves into (unions weave the same program
    /// at several tracepoints).
    pub tracepoints: Vec<String>,
    /// The straight-line operation list.
    pub ops: Vec<AdviceOp>,
}

impl AdviceProgram {
    /// Returns `true` if this program packs into the baggage.
    pub fn packs(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, AdviceOp::Pack { .. }))
    }

    /// Returns `true` if this program emits results.
    pub fn emits(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, AdviceOp::Emit { .. }))
    }
}

/// A fully compiled query: advice programs plus output metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledQuery {
    /// The query's identity (also the emit slot).
    pub id: QueryId,
    /// Optional user-facing name (referencable from later queries).
    pub name: String,
    /// The original query text.
    pub text: String,
    /// One advice program per stage, in causal order (emit stage last).
    pub advice: Vec<AdviceProgram>,
    /// Output shape (shared with the emit advice and the agent buffers).
    pub output: Arc<OutputSpec>,
}

impl CompiledQuery {
    /// Returns every tracepoint the query weaves advice into.
    pub fn tracepoints(&self) -> Vec<&str> {
        self.advice
            .iter()
            .flat_map(|a| a.tracepoints.iter().map(String::as_str))
            .collect()
    }

    /// Derives the baggage slot id for pack boundary `slot` of this query.
    pub fn slot_id(base: QueryId, slot: u8) -> QueryId {
        QueryId(base.0 * 256 + 1 + u64::from(slot))
    }
}
