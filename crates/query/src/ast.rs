//! Abstract syntax for Pivot Tracing queries.

use pivot_model::{AggFunc, Expr};

/// A temporal filter restricting which tuples of a source participate in a
/// happened-before join (paper Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemporalFilter {
    /// The `n` least recent tuples (`First` / `FirstN`).
    First(usize),
    /// The `n` most recent tuples (`MostRecent` / `MostRecentN`).
    MostRecent(usize),
}

impl TemporalFilter {
    /// Restricts `tuples` (in causal order, oldest first) to the filter's
    /// window. Shared by the tree-walk interpreter and the bytecode VM so
    /// post-unpack temporal semantics cannot drift between engines.
    pub fn apply(self, tuples: &mut Vec<pivot_model::Tuple>) {
        match self {
            TemporalFilter::First(n) => tuples.truncate(n.max(1)),
            TemporalFilter::MostRecent(n) => {
                let keep = n.max(1);
                if tuples.len() > keep {
                    let skip = tuples.len() - keep;
                    tuples.drain(..skip);
                }
            }
        }
    }
}

/// What a source name refers to.
///
/// Names are resolved at compile time: a name matching an installed query
/// becomes a [`SourceKind::QueryRef`] (paper Q9 joins against Q8);
/// otherwise it names one or more tracepoints.
#[derive(Clone, PartialEq, Debug)]
pub enum SourceKind {
    /// One or more tracepoint names; more than one denotes a union
    /// (`From e In DataRPCs, ControlRPCs`).
    Tracepoints(Vec<String>),
    /// A reference to another installed query by name.
    QueryRef(String),
}

/// A `From`/`Join` source: an alias bound to tracepoints or a query
/// reference, optionally under a temporal filter.
#[derive(Clone, PartialEq, Debug)]
pub struct Source {
    /// The alias tuples of this source are referred to by.
    pub alias: String,
    /// What the source names.
    pub kind: SourceKind,
    /// Optional temporal filter (`First(…)`, `MostRecent(…)`).
    pub filter: Option<TemporalFilter>,
}

/// A `Join <alias> In <source> On <a> -> <b>` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct JoinClause {
    /// The joined source.
    pub source: Source,
    /// Alias on the left of `->` (the causally earlier side).
    pub earlier: String,
    /// Alias on the right of `->` (the causally later side).
    pub later: String,
}

/// One item of a `Select` clause.
#[derive(Clone, PartialEq, Debug)]
pub enum SelectItem {
    /// A scalar expression (also an implicit group key when the select
    /// contains aggregates).
    Expr(Expr),
    /// An aggregate over an expression; `COUNT` uses a null literal
    /// argument.
    Agg(AggFunc, Expr),
}

/// A parsed Pivot Tracing query.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// The main (`From`) source — the causally *last* tracepoint, where the
    /// query's results are emitted.
    pub from: Source,
    /// Happened-before joins, in declaration order.
    pub joins: Vec<JoinClause>,
    /// Conjunctive `Where` predicates.
    pub wheres: Vec<Expr>,
    /// Explicit `GroupBy` fields.
    pub group_by: Vec<String>,
    /// `Select` items.
    pub select: Vec<SelectItem>,
    /// Optional `Trigger` clause: requests whose emitted tuples satisfy
    /// this predicate (or any emitted tuple, when the predicate is
    /// omitted) cause a retroactive full-fidelity flush of the agent's
    /// recent-event ring buffer. `Some(Lit(Bool(true)))` is the bare
    /// `Trigger` form.
    pub trigger: Option<Expr>,
}

impl Query {
    /// Returns `true` if any select item aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.select.iter().any(|s| matches!(s, SelectItem::Agg(..)))
    }

    /// Returns the alias declared by the `From` clause.
    pub fn main_alias(&self) -> &str {
        &self.from.alias
    }

    /// Looks up a source (From or Join) by alias.
    pub fn source_by_alias(&self, alias: &str) -> Option<&Source> {
        if self.from.alias == alias {
            return Some(&self.from);
        }
        self.joins
            .iter()
            .map(|j| &j.source)
            .find(|s| s.alias == alias)
    }
}
