//! Register bytecode for advice programs: the one execution core shared by
//! the simulated runtime, the live runtime, and the static verifier.
//!
//! [`AdviceProgram`]s are straight-line lists of Table-2 ops whose
//! expressions are `Expr` trees over *named* fields. Executing them
//! directly costs a tree walk plus a `Schema::index_of` name resolution
//! (with suffix matching) per field reference per tuple per event. This
//! module lowers each program once, at install time, into
//! [`AdviceByteCode`]:
//!
//! - every `Expr` tree becomes a flat run of register instructions
//!   ([`EInst`]) over a small register file, with literals in a constant
//!   pool and field references pre-resolved to column indices;
//! - short-circuit `&&` / `||` lower to [`EInst::CoerceBool`] +
//!   [`EInst::SkipIfBool`] forward skips, so the right operand is not
//!   evaluated (and cannot error) exactly when the tree-walk would not
//!   evaluate it;
//! - field references the schema cannot resolve (unknown or ambiguous
//!   names) lower to [`EInst::Fail`], matching the tree-walk's
//!   `UnknownField` error-per-tuple behavior;
//! - `Filter` ops immediately preceding the program's final sink op fuse
//!   into that sink as pre-predicates, skipping one intermediate tuple
//!   materialization per event.
//!
//! The [`Vm`] executes bytecode with reusable scratch buffers: on the
//! steady-state path it allocates nothing for unwoven or filtered-out
//! events and only what the emitted rows themselves need otherwise.
//!
//! Lowering preserves the tree-walk interpreter's observable semantics
//! *exactly* (rows, stats, and resulting baggage); the property tests in
//! `pivot-core` assert this over randomized programs. The verifier runs
//! its dataflow checks on this same lowered artifact ("verify what you
//! execute"), and the live bus ships it — [`AdviceByteCode::validate`]
//! bounds-checks every register, constant, and skip so a decoded program
//! can never make the VM index out of range.

use std::fmt;
use std::sync::Arc;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::expr::{eval_binary, eval_unary};
use pivot_model::{AggState, BinOp, Expr, GroupKey, Schema, Sym, Tuple, UnOp, Value};

use crate::advice::{AdviceOp, AdviceProgram, CompiledQuery, OutputSpec};
use crate::ast::TemporalFilter;

/// A register index.
pub type Reg = u16;

/// One flat expression instruction.
///
/// Expression programs are straight-line except for *forward* skips
/// ([`EInst::SkipIfBool`]); there are no backward jumps, so termination is
/// structural, like the advice ops themselves.
#[derive(Clone, PartialEq, Debug)]
pub enum EInst {
    /// `regs[dst] = tuple[col]` (`Null` when the tuple is shorter — same
    /// as `Tuple::get`).
    Load {
        /// Destination register.
        dst: Reg,
        /// Pre-resolved column index into the joined tuple.
        col: u16,
    },
    /// `regs[dst] = consts[idx]`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant-pool index.
        idx: u16,
    },
    /// `regs[dst] = op(regs[src])`; evaluation errors drop the tuple.
    Unary {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: UnOp,
        /// Operand register.
        src: Reg,
    },
    /// `regs[dst] = op(regs[lhs], regs[rhs])` for non-short-circuit
    /// operators; evaluation errors drop the tuple.
    Binary {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: BinOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `regs[dst] = Bool(regs[src])`, erroring when `regs[src]` is not a
    /// bool — the `&&`/`||` operand coercion of the tree-walk evaluator.
    CoerceBool {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// If `regs[src]` is `Bool(when)`, skip the next `skip` instructions
    /// (the short-circuited operand block). `regs[src]` is always a bool
    /// here: lowering only emits this after [`EInst::CoerceBool`].
    SkipIfBool {
        /// Register holding the already-coerced left operand.
        src: Reg,
        /// Skip when the operand equals this value (`false` for `&&`,
        /// `true` for `||`).
        when: bool,
        /// Number of instructions to skip forward.
        skip: u16,
    },
    /// Unconditional evaluation failure: the lowered form of a field
    /// reference the schema could not resolve (the tree-walk's
    /// `UnknownField` error, which recurs for every tuple).
    Fail,
}

/// A lowered expression: a range of [`EInst`]s in the shared pool plus the
/// register its value ends up in.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExprProg {
    /// First instruction index in [`AdviceByteCode::einsts`].
    pub start: u32,
    /// Number of instructions.
    pub len: u32,
    /// Register holding the result after execution.
    pub result: Reg,
}

/// An inclusive-exclusive index range into one of the bytecode pools.
pub type PoolRange = (u32, u32);

/// One lowered advice operation.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Append the named tracepoint exports (a range into
    /// [`AdviceByteCode::names`]) to every live tuple; absent exports
    /// observe `Null`.
    Observe {
        /// Range of export names in the name pool.
        names: PoolRange,
    },
    /// Unpack baggage tuples for `slot` and cross-join them with the live
    /// tuples (the happened-before join).
    Unpack {
        /// The baggage slot to read.
        slot: QueryId,
        /// Declared width of the packed tuples (static metadata for the
        /// verifier; execution never needs it).
        width: u16,
        /// Temporal window applied after unpacking, when the optimizer
        /// did not push it into the pack mode.
        temporal: Option<TemporalFilter>,
    },
    /// Drop tuples whose predicate is not `Ok(Bool(true))`.
    Filter {
        /// Index into [`AdviceByteCode::exprs`].
        pred: u32,
    },
    /// Project each surviving tuple and pack the results into the baggage.
    Pack {
        /// The baggage slot to write.
        slot: QueryId,
        /// Retention / aggregation mode.
        mode: PackMode,
        /// Fused pre-predicates (trailing `Filter` ops when this is the
        /// program's final op); a tuple must pass all of them.
        pre: PoolRange,
        /// Projection expressions, one per packed column.
        exprs: PoolRange,
    },
    /// Fire a retroactive-flush trigger through [`EmitSink::trigger`] when
    /// any live tuple satisfies `pred` (or unconditionally when `pred` is
    /// `None`). At most one firing per invocation; evaluation failures
    /// count as not-satisfied (advice safety).
    Trigger {
        /// The query requesting the flush.
        query: QueryId,
        /// Optional predicate: an index into [`AdviceByteCode::exprs`].
        pred: Option<u32>,
    },
    /// Evaluate the output spec on each surviving tuple and hand rows to
    /// the [`EmitSink`].
    Emit {
        /// The query whose results these are.
        query: QueryId,
        /// The query's output shape (shared with the installing frontend
        /// and the agent buffers).
        spec: Arc<OutputSpec>,
        /// Fused pre-predicates, as for `Pack`.
        pre: PoolRange,
        /// Group-key expressions (also the projected row for streaming
        /// specs).
        keys: PoolRange,
        /// Aggregate argument expressions.
        aggs: PoolRange,
    },
}

/// A lowered advice program: flat instructions plus shared pools.
#[derive(Clone, PartialEq, Debug)]
pub struct AdviceByteCode {
    /// Tracepoints this program weaves into.
    pub tracepoints: Vec<String>,
    /// Top-level instructions, in op order.
    pub insts: Vec<Inst>,
    /// Shared expression-instruction pool; [`ExprProg`]s are ranges into
    /// this.
    pub einsts: Vec<EInst>,
    /// Lowered expressions referenced by index from [`Inst`]s.
    pub exprs: Vec<ExprProg>,
    /// Constant pool (representation-exact deduplicated literals).
    pub consts: Vec<Value>,
    /// Export-name pool for `Observe` (interned).
    pub names: Vec<Sym>,
    /// Register-file size required to execute any expression.
    pub num_regs: u16,
}

impl AdviceByteCode {
    /// Returns `true` if this program packs into the baggage.
    pub fn packs(&self) -> bool {
        self.insts.iter().any(|i| matches!(i, Inst::Pack { .. }))
    }

    /// Returns `true` if this program emits results.
    pub fn emits(&self) -> bool {
        self.insts.iter().any(|i| matches!(i, Inst::Emit { .. }))
    }

    /// Returns `true` if this program contains a retro `Trigger` op —
    /// installing it should switch the agent's hindsight ring on.
    pub fn triggers(&self) -> bool {
        self.insts.iter().any(|i| matches!(i, Inst::Trigger { .. }))
    }

    /// Returns `true` when [`Vm::run_batch`] may execute this program
    /// op-major over a whole batch of invocations sharing one baggage,
    /// with results byte-identical to running [`Vm::run`] once per
    /// invocation in order.
    ///
    /// Three structural conditions guarantee that:
    ///
    /// - **no slot is both packed and unpacked** anywhere in the program
    ///   — otherwise invocation *i+1*'s unpack would observe invocation
    ///   *i*'s packs in the scalar order but not in op-major order;
    /// - **each slot is packed by at most one instruction** — two packs
    ///   to one slot interleave per-invocation in scalar order but
    ///   per-op in batch order, observable at retention caps;
    /// - **at most one `Emit`** — with several, scalar order interleaves
    ///   each invocation's emits across the sinks while op-major order
    ///   groups them per op.
    ///
    /// Every program the query compiler produces satisfies all three
    /// (one sink op, pack *or* unpack per slot per side of the join).
    /// `run_batch` falls back to per-invocation execution otherwise, so
    /// callers need not check.
    pub fn batchable(&self) -> bool {
        let mut packed: Vec<QueryId> = Vec::new();
        let mut unpacked: Vec<QueryId> = Vec::new();
        let mut emits = 0usize;
        for inst in &self.insts {
            match inst {
                Inst::Unpack { slot, .. } => {
                    if packed.contains(slot) {
                        return false;
                    }
                    unpacked.push(*slot);
                }
                Inst::Pack { slot, .. } => {
                    if packed.contains(slot) || unpacked.contains(slot) {
                        return false;
                    }
                    packed.push(*slot);
                }
                Inst::Emit { .. } => {
                    emits += 1;
                    if emits > 1 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }
}

/// Execution statistics for one advice run; field-for-field the same
/// meaning as the tree-walk interpreter's stats.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VmStats {
    /// Tuples packed into the baggage.
    pub packed: usize,
    /// Tuples unpacked from the baggage.
    pub unpacked: usize,
    /// Tuples that reached an `Emit` (before output projection).
    pub emitted: usize,
}

/// Receives evaluated rows from [`Vm::run`].
///
/// The VM hands the sink *evaluated* output rows — group keys and
/// aggregate arguments, or projected streaming rows — so the process-local
/// aggregator updates its states in place without ever cloning specs or
/// re-evaluating expressions.
pub trait EmitSink {
    /// One projected row of a streaming (no-aggregate) query.
    fn streaming_row(&mut self, query: QueryId, spec: &Arc<OutputSpec>, row: Tuple);
    /// One `(group key, aggregate arguments)` row of an aggregating query;
    /// `args` has one value per `spec.aggs` entry.
    fn grouped_row(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        args: &[Value],
    );
    /// `true` when this sink accepts batch-folded grouped deliveries via
    /// [`EmitSink::grouped_fold`] instead of one [`EmitSink::grouped_row`]
    /// call per row.
    ///
    /// Opting in trades per-row delivery for the paper's `Combine`
    /// semantics: [`Vm::run_batch`] pre-aggregates each batch into partial
    /// [`AggState`]s and the sink merges one partial per distinct group.
    /// The fold applies `update` row-by-row in emit order, so results are
    /// identical for every aggregate whose combine is exact (`COUNT`,
    /// integer `SUM`, `MIN`, `MAX`); float sums may differ from per-row
    /// delivery in the last bit, exactly as relay-tier partial
    /// aggregation already may.
    fn folds_grouped(&self) -> bool {
        false
    }
    /// A batch-folded grouped delivery: `rows` emitted rows of `key`
    /// collapsed into one partial accumulator per `spec.aggs` entry.
    ///
    /// Called only when [`EmitSink::folds_grouped`] returns `true`, and at
    /// most once per distinct key per fold window. Distinct keys arrive in
    /// first-seen (emit) order, so a sink that caps its group count makes
    /// the same keep/shed decision per group as it would under per-row
    /// delivery.
    fn grouped_fold(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        states: &[AggState],
        rows: u64,
    ) {
        let _ = (query, spec, key, states, rows);
    }
    /// A [`Inst::Trigger`] fired for `query` during this invocation: the
    /// embedding agent should retroactively flush its recent-event ring
    /// for the current request. Default: ignore (sinks that don't do
    /// retroactive tracing need no changes).
    fn trigger(&mut self, query: QueryId) {
        let _ = query;
    }
}

/// An [`EmitSink`] that buffers rows, for tests and differential checks.
#[derive(Default, Debug)]
pub struct CollectSink {
    /// Streaming rows, in emit order.
    pub raw: Vec<(QueryId, Tuple)>,
    /// Grouped rows, in emit order.
    pub grouped: Vec<(QueryId, GroupKey, Vec<Value>)>,
    /// Trigger firings, in firing order (one entry per firing invocation).
    pub triggers: Vec<QueryId>,
}

impl EmitSink for CollectSink {
    fn streaming_row(&mut self, query: QueryId, _spec: &Arc<OutputSpec>, row: Tuple) {
        self.raw.push((query, row));
    }
    fn grouped_row(
        &mut self,
        query: QueryId,
        _spec: &Arc<OutputSpec>,
        key: GroupKey,
        args: &[Value],
    ) {
        self.grouped.push((query, key, args.to_vec()));
    }
    fn trigger(&mut self, query: QueryId) {
        self.triggers.push(query);
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// A lowered program plus any notes about constructs that could only be
/// lowered to runtime failures (surfaced by the verifier as PT008).
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The bytecode.
    pub code: AdviceByteCode,
    /// Human-readable notes, one per degraded lowering (e.g. an
    /// unresolvable field reference).
    pub notes: Vec<String>,
}

struct LowerCtx {
    einsts: Vec<EInst>,
    exprs: Vec<ExprProg>,
    consts: Vec<Value>,
    names: Vec<Sym>,
    num_regs: u16,
    notes: Vec<String>,
}

impl LowerCtx {
    fn new() -> LowerCtx {
        LowerCtx {
            einsts: Vec::new(),
            exprs: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            num_regs: 0,
            notes: Vec::new(),
        }
    }

    /// Interns `v` in the constant pool with *representation-exact*
    /// equality: `I64(5)` and `U64(5)` compare loosely equal but behave
    /// differently under arithmetic, so they must not collapse (nor may
    /// `F64(0.0)` and `F64(-0.0)`).
    fn const_idx(&mut self, v: &Value) -> u16 {
        let same_repr = |a: &Value, b: &Value| -> bool {
            if std::mem::discriminant(a) != std::mem::discriminant(b) {
                return false;
            }
            match (a, b) {
                (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
                _ => a == b,
            }
        };
        if let Some(i) = self.consts.iter().position(|c| same_repr(c, v)) {
            return i as u16;
        }
        self.consts.push(v.clone());
        (self.consts.len() - 1) as u16
    }

    /// Lowers `expr` against `schema`, appending to the shared pools, and
    /// returns its index in `exprs`.
    fn lower_expr(&mut self, expr: &Expr, schema: &Schema, what: &str) -> u32 {
        let start = self.einsts.len() as u32;
        let result = self.lower_node(expr, schema, 0, what);
        self.exprs.push(ExprProg {
            start,
            len: self.einsts.len() as u32 - start,
            result,
        });
        (self.exprs.len() - 1) as u32
    }

    /// Lowers one node with stack-discipline register allocation: the
    /// result lands in register `depth`, temporaries use `depth + 1…`.
    fn lower_node(&mut self, expr: &Expr, schema: &Schema, depth: u16, what: &str) -> Reg {
        self.num_regs = self.num_regs.max(depth + 1);
        match expr {
            Expr::Field(name) => {
                match schema.index_of(name) {
                    Some(col) => self.einsts.push(EInst::Load {
                        dst: depth,
                        col: col as u16,
                    }),
                    None => {
                        // The tree-walk errors `UnknownField` for every
                        // tuple; `Fail` reproduces that deterministically.
                        self.notes.push(format!(
                            "field `{name}` in {what} does not resolve against \
                             the advice schema {schema:?}; it will fail at runtime"
                        ));
                        self.einsts.push(EInst::Fail);
                    }
                }
                depth
            }
            Expr::Lit(v) => {
                let idx = self.const_idx(v);
                self.einsts.push(EInst::Const { dst: depth, idx });
                depth
            }
            Expr::Unary(op, e) => {
                let src = self.lower_node(e, schema, depth, what);
                self.einsts.push(EInst::Unary {
                    dst: depth,
                    op: *op,
                    src,
                });
                depth
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), l, r) => {
                // Short-circuit: coerce lhs to bool (erroring on non-bool),
                // then skip the rhs block exactly when the tree-walk would
                // not evaluate it.
                let lhs = self.lower_node(l, schema, depth, what);
                self.einsts.push(EInst::CoerceBool {
                    dst: depth,
                    src: lhs,
                });
                let skip_at = self.einsts.len();
                self.einsts.push(EInst::SkipIfBool {
                    src: depth,
                    when: matches!(op, BinOp::Or),
                    skip: 0, // patched below
                });
                let rhs = self.lower_node(r, schema, depth + 1, what);
                self.einsts.push(EInst::CoerceBool {
                    dst: depth,
                    src: rhs,
                });
                let block_len = (self.einsts.len() - skip_at - 1) as u16;
                if let EInst::SkipIfBool { skip, .. } = &mut self.einsts[skip_at] {
                    *skip = block_len;
                }
                depth
            }
            Expr::Binary(op, l, r) => {
                let lhs = self.lower_node(l, schema, depth, what);
                let rhs = self.lower_node(r, schema, depth + 1, what);
                self.einsts.push(EInst::Binary {
                    dst: depth,
                    op: *op,
                    lhs,
                    rhs,
                });
                depth
            }
        }
    }

    fn lower_expr_list(&mut self, exprs: &[Expr], schema: &Schema, what: &str) -> PoolRange {
        let start = self.exprs.len() as u32;
        for e in exprs {
            self.lower_expr(e, schema, what);
        }
        (start, self.exprs.len() as u32)
    }
}

/// Lowers one advice program into register bytecode.
///
/// Lowering is total: programs that would error at runtime (unresolvable
/// fields) lower to bytecode with the same runtime behavior, and the
/// degradation is reported in [`Lowered::notes`].
pub fn lower_program(program: &AdviceProgram) -> Lowered {
    let mut cx = LowerCtx::new();
    let mut insts = Vec::with_capacity(program.ops.len());
    // The running joined schema, maintained exactly as the tree-walk
    // interpreter builds it, so field resolution (including suffix
    // matching and ambiguity) is bit-identical.
    let mut schema = Schema::empty();

    // `Filter` ops immediately preceding the final op fuse into it when it
    // is a sink; they are predicates over an unchanged schema, so running
    // them per-tuple inside the sink is observationally equivalent.
    let mut fused_from = program.ops.len();
    if matches!(
        program.ops.last(),
        Some(AdviceOp::Pack { .. } | AdviceOp::Emit { .. })
    ) {
        let sink_at = program.ops.len() - 1;
        let mut first_filter = sink_at;
        while first_filter > 0 && matches!(program.ops[first_filter - 1], AdviceOp::Filter { .. }) {
            first_filter -= 1;
        }
        fused_from = first_filter;
    }

    for (i, op) in program.ops.iter().enumerate() {
        match op {
            AdviceOp::Observe { alias, fields } => {
                let start = cx.names.len() as u32;
                cx.names.extend(fields.iter().map(Sym::new));
                let obs = Schema::new(fields.iter().map(|f| format!("{alias}.{f}")));
                schema = schema.concat(&obs);
                insts.push(Inst::Observe {
                    names: (start, cx.names.len() as u32),
                });
            }
            AdviceOp::Unpack {
                slot,
                schema: unpack_schema,
                post_filter,
            } => {
                schema = schema.concat(unpack_schema);
                insts.push(Inst::Unpack {
                    slot: *slot,
                    width: unpack_schema.len() as u16,
                    temporal: *post_filter,
                });
            }
            AdviceOp::Filter { pred } => {
                if i >= fused_from {
                    continue; // lowered as part of the sink below
                }
                let pred = cx.lower_expr(pred, &schema, "a Where predicate");
                insts.push(Inst::Filter { pred });
            }
            AdviceOp::Pack {
                slot,
                mode,
                exprs,
                names: _,
            } => {
                let pre = fused_predicates(&mut cx, program, fused_from, i, &schema);
                let exprs = cx.lower_expr_list(exprs, &schema, "a Pack projection");
                insts.push(Inst::Pack {
                    slot: *slot,
                    mode: mode.clone(),
                    pre,
                    exprs,
                });
            }
            AdviceOp::Trigger { query, pred } => {
                let pred = pred
                    .as_ref()
                    .map(|p| cx.lower_expr(p, &schema, "a Trigger predicate"));
                insts.push(Inst::Trigger {
                    query: *query,
                    pred,
                });
            }
            AdviceOp::Emit { query, spec } => {
                let pre = fused_predicates(&mut cx, program, fused_from, i, &schema);
                let keys = cx.lower_expr_list(&spec.key_exprs, &schema, "a Select key");
                let agg_exprs: Vec<Expr> = spec.aggs.iter().map(|(_, e)| e.clone()).collect();
                let aggs = cx.lower_expr_list(&agg_exprs, &schema, "an aggregate argument");
                insts.push(Inst::Emit {
                    query: *query,
                    spec: spec.clone(),
                    pre,
                    keys,
                    aggs,
                });
            }
        }
    }

    Lowered {
        code: AdviceByteCode {
            tracepoints: program.tracepoints.clone(),
            insts,
            einsts: cx.einsts,
            exprs: cx.exprs,
            consts: cx.consts,
            names: cx.names,
            num_regs: cx.num_regs,
        },
        notes: cx.notes,
    }
}

/// Lowers the trailing `Filter` predicates fused into the sink at `sink_at`.
fn fused_predicates(
    cx: &mut LowerCtx,
    program: &AdviceProgram,
    fused_from: usize,
    sink_at: usize,
    schema: &Schema,
) -> PoolRange {
    let start = cx.exprs.len() as u32;
    if sink_at == program.ops.len() - 1 {
        for op in &program.ops[fused_from..sink_at] {
            if let AdviceOp::Filter { pred } = op {
                cx.lower_expr(pred, schema, "a Where predicate");
            }
        }
    }
    (start, cx.exprs.len() as u32)
}

/// A fully lowered query: the executable artifact installed on agents,
/// shipped over the bus, and checked by the verifier.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledCode {
    /// The query's identity (also the emit slot).
    pub id: QueryId,
    /// Optional user-facing name.
    pub name: String,
    /// One bytecode program per advice stage, in causal order.
    pub programs: Vec<Arc<AdviceByteCode>>,
    /// Output shape, shared with the emit instructions.
    pub output: Arc<OutputSpec>,
}

impl CompiledCode {
    /// Lowers every advice program of `query`; notes from all stages are
    /// concatenated.
    pub fn lower(query: &CompiledQuery) -> (CompiledCode, Vec<String>) {
        let mut notes = Vec::new();
        let programs = query
            .advice
            .iter()
            .map(|p| {
                let lowered = lower_program(p);
                notes.extend(lowered.notes);
                Arc::new(lowered.code)
            })
            .collect();
        (
            CompiledCode {
                id: query.id,
                name: query.name.clone(),
                programs,
                output: query.output.clone(),
            },
            notes,
        )
    }

    /// Returns every tracepoint the query weaves bytecode into.
    pub fn tracepoints(&self) -> impl Iterator<Item = &str> {
        self.programs
            .iter()
            .flat_map(|p| p.tracepoints.iter().map(String::as_str))
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Why a bytecode program failed validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bytecode: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

impl AdviceByteCode {
    /// Bounds-checks every reference in the program: registers against
    /// `num_regs`, constants against the pool, expression indices and
    /// name ranges against their pools, and skips against their
    /// expression's extent. The verifier runs this at install time and the
    /// live agent runs it on every decoded program, so the VM itself can
    /// index without checks failing into panics.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |msg: String| Err(ValidateError(msg));
        if self.num_regs == 0 && !self.einsts.is_empty() {
            return err("num_regs is 0 but expression instructions exist".into());
        }
        for (xi, x) in self.exprs.iter().enumerate() {
            let (start, len) = (x.start as usize, x.len as usize);
            let end = match start.checked_add(len) {
                Some(e) if e <= self.einsts.len() => e,
                _ => return err(format!("expr {xi} range out of bounds")),
            };
            if len == 0 {
                return err(format!("expr {xi} is empty"));
            }
            if x.result >= self.num_regs {
                return err(format!("expr {xi} result register out of range"));
            }
            for (pc, inst) in self.einsts[start..end].iter().enumerate() {
                let reg_ok = |r: Reg| r < self.num_regs;
                match inst {
                    EInst::Load { dst, .. } if !reg_ok(*dst) => {
                        return err(format!("expr {xi}+{pc}: register out of range"))
                    }
                    EInst::Const { dst, idx }
                        if !reg_ok(*dst) || *idx as usize >= self.consts.len() =>
                    {
                        return err(format!("expr {xi}+{pc}: const reference out of range"));
                    }
                    EInst::Unary { dst, src, .. } if !reg_ok(*dst) || !reg_ok(*src) => {
                        return err(format!("expr {xi}+{pc}: register out of range"))
                    }
                    EInst::Binary { dst, lhs, rhs, .. }
                        if !reg_ok(*dst) || !reg_ok(*lhs) || !reg_ok(*rhs) =>
                    {
                        return err(format!("expr {xi}+{pc}: register out of range"))
                    }
                    EInst::CoerceBool { dst, src } if !reg_ok(*dst) || !reg_ok(*src) => {
                        return err(format!("expr {xi}+{pc}: register out of range"))
                    }
                    EInst::SkipIfBool { src, skip, .. } => {
                        if !reg_ok(*src) {
                            return err(format!("expr {xi}+{pc}: register out of range"));
                        }
                        // Skips must stay within this expression's range.
                        if pc + 1 + *skip as usize > len {
                            return err(format!("expr {xi}+{pc}: skip target out of range"));
                        }
                    }
                    _ => {}
                }
            }
        }
        let expr_range_ok = |(s, e): PoolRange| s <= e && e as usize <= self.exprs.len();
        for (ii, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Observe { names: (s, e) } => {
                    if s > e || *e as usize > self.names.len() {
                        return err(format!("inst {ii}: observe name range out of bounds"));
                    }
                }
                Inst::Unpack { .. } => {}
                Inst::Filter { pred } => {
                    if *pred as usize >= self.exprs.len() {
                        return err(format!("inst {ii}: filter predicate out of bounds"));
                    }
                }
                Inst::Trigger { pred, .. } => {
                    if let Some(p) = pred {
                        if *p as usize >= self.exprs.len() {
                            return err(format!("inst {ii}: trigger predicate out of bounds"));
                        }
                    }
                }
                Inst::Pack {
                    pre, exprs, mode, ..
                } => {
                    if !expr_range_ok(*pre) || !expr_range_ok(*exprs) {
                        return err(format!("inst {ii}: pack expr range out of bounds"));
                    }
                    if let PackMode::GroupAgg { key_len, aggs } = mode {
                        let width = (exprs.1 - exprs.0) as usize;
                        if key_len + aggs.len() != width {
                            return err(format!(
                                "inst {ii}: GroupAgg layout ({} keys + {} aggs) does not \
                                 match pack width {width}",
                                key_len,
                                aggs.len()
                            ));
                        }
                    }
                }
                Inst::Emit {
                    spec,
                    pre,
                    keys,
                    aggs,
                    ..
                } => {
                    if !expr_range_ok(*pre) || !expr_range_ok(*keys) || !expr_range_ok(*aggs) {
                        return err(format!("inst {ii}: emit expr range out of bounds"));
                    }
                    if (keys.1 - keys.0) as usize != spec.key_exprs.len()
                        || (aggs.1 - aggs.0) as usize != spec.aggs.len()
                    {
                        return err(format!("inst {ii}: emit ranges do not match its spec"));
                    }
                    // The spec's column layout is consumed by reporting; a
                    // forged spec must not be able to index out of range.
                    for c in &spec.columns {
                        let ok = match c {
                            crate::advice::ColumnRef::Key(i) => *i < spec.key_names.len(),
                            crate::advice::ColumnRef::Agg(i) => *i < spec.agg_names.len(),
                        };
                        if !ok {
                            return err(format!("inst {ii}: emit spec column out of range"));
                        }
                    }
                    if spec.key_names.len() != spec.key_exprs.len()
                        || spec.agg_names.len() != spec.aggs.len()
                    {
                        return err(format!("inst {ii}: emit spec name/expr arity mismatch"));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// The register VM. Holds reusable scratch (register file, tuple buffers)
/// so steady-state advice execution does not allocate for the machinery
/// itself — only for the tuples and rows it produces.
#[derive(Default)]
pub struct Vm {
    regs: Vec<Value>,
    tuples: Vec<Tuple>,
    joined: Vec<Tuple>,
    projected: Vec<Tuple>,
    args: Vec<Value>,
    /// Batched execution only: `src[i]` is the invocation index that row
    /// `tuples[i]` belongs to. Kept in invocation-major (sorted) order.
    src: Vec<u32>,
    /// Batched execution only: scratch twin of `joined` for `src`.
    joined_src: Vec<u32>,
    /// Batched execution only: per-batch partial-aggregation scratch for
    /// sinks that opt into [`EmitSink::grouped_fold`] — `(group key,
    /// accumulators, rows folded)`, in first-seen order.
    fold: Vec<(Tuple, Vec<AggState>, u64)>,
    ops: u64,
}

/// Cap on distinct groups held in the batch partial-aggregation scratch
/// before it flushes to the sink mid-batch. Bounds the linear key scan
/// under a group-key explosion; a key recurring across windows simply
/// reaches the sink once per window and is merged there.
const FOLD_WINDOW: usize = 64;

/// Expression evaluation failed; the affected tuple is dropped (advice
/// safety: errors never propagate to the carrying request).
struct EvalFailed;

impl Vm {
    /// Creates a VM with empty scratch buffers.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Cumulative count of retired instructions over this VM's lifetime.
    ///
    /// Callers meter per-program work by taking the difference around a
    /// [`Vm::run`] call. This is deliberately *not* part of [`VmStats`]:
    /// stats are compared between the VM and the tree-walk interpreter in
    /// differential tests, and the two engines retire different
    /// instruction counts for the same semantics (the VM fuses trailing
    /// filters).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Executes `code` for one tracepoint invocation.
    ///
    /// `exports` supplies the tracepoint's variables (default exports
    /// included by the caller). Packs mutate `baggage`; emitted rows go to
    /// `sink`. Semantics match the tree-walk interpreter exactly.
    pub fn run(
        &mut self,
        code: &AdviceByteCode,
        exports: &[(&str, Value)],
        baggage: &mut Baggage,
        sink: &mut impl EmitSink,
    ) -> VmStats {
        let mut stats = VmStats::default();
        self.regs.clear();
        self.regs.resize(code.num_regs as usize, Value::Null);
        self.tuples.clear();
        self.tuples.push(Tuple::empty());

        for inst in &code.insts {
            self.ops += 1;
            match inst {
                Inst::Observe { names } => {
                    let observed: Tuple = code.names[names.0 as usize..names.1 as usize]
                        .iter()
                        .map(|f| {
                            exports
                                .iter()
                                .find(|(name, _)| *name == f.as_str())
                                .map(|(_, v)| v.clone())
                                .unwrap_or(Value::Null)
                        })
                        .collect();
                    if self.tuples.len() == 1 && self.tuples[0].is_empty() {
                        // First op of almost every program: the single
                        // seed tuple takes the observation by move.
                        self.tuples[0] = observed;
                    } else {
                        for t in &mut self.tuples {
                            *t = t.concat(&observed);
                        }
                    }
                }
                Inst::Unpack { slot, temporal, .. } => {
                    let mut unpacked = baggage.unpack(*slot);
                    if let Some(f) = temporal {
                        f.apply(&mut unpacked);
                    }
                    stats.unpacked += unpacked.len();
                    // Happened-before join: cross product with the tuples
                    // packed earlier in this request's execution.
                    self.joined.clear();
                    for t in &self.tuples {
                        for u in &unpacked {
                            self.joined.push(t.concat(u));
                        }
                    }
                    std::mem::swap(&mut self.tuples, &mut self.joined);
                }
                Inst::Filter { pred } => {
                    let prog = code.exprs[*pred as usize];
                    self.joined.clear();
                    for t in self.tuples.drain(..) {
                        if matches!(eval(code, prog, &t, &mut self.regs), Ok(Value::Bool(true))) {
                            self.joined.push(t);
                        }
                    }
                    std::mem::swap(&mut self.tuples, &mut self.joined);
                }
                Inst::Pack {
                    slot,
                    mode,
                    pre,
                    exprs,
                } => {
                    self.projected.clear();
                    let mut survivors = 0usize;
                    for i in 0..self.tuples.len() {
                        let t = &self.tuples[i];
                        if !passes_pre(code, *pre, t, &mut self.regs) {
                            continue;
                        }
                        survivors += 1;
                        if let Ok(p) = project(code, *exprs, t, &mut self.regs) {
                            self.projected.push(p);
                        }
                    }
                    // When fused predicates drop every tuple, the tree-walk
                    // stops at the filter and never packs; otherwise it
                    // packs whatever projections survive (possibly none).
                    if survivors > 0 {
                        stats.packed += self.projected.len();
                        baggage.pack(*slot, mode, self.projected.drain(..));
                    }
                }
                Inst::Trigger { query, pred } => {
                    let fires = match pred {
                        None => !self.tuples.is_empty(),
                        Some(p) => {
                            let prog = code.exprs[*p as usize];
                            self.tuples.iter().any(|t| {
                                matches!(eval(code, prog, t, &mut self.regs), Ok(Value::Bool(true)))
                            })
                        }
                    };
                    if fires {
                        sink.trigger(*query);
                    }
                }
                Inst::Emit {
                    query,
                    spec,
                    pre,
                    keys,
                    aggs,
                } => {
                    for i in 0..self.tuples.len() {
                        let t = &self.tuples[i];
                        if !passes_pre(code, *pre, t, &mut self.regs) {
                            continue;
                        }
                        stats.emitted += 1;
                        if spec.streaming {
                            if let Ok(row) = project(code, *keys, t, &mut self.regs) {
                                sink.streaming_row(*query, spec, row);
                            }
                        } else {
                            let Ok(key) = project(code, *keys, t, &mut self.regs) else {
                                continue;
                            };
                            self.args.clear();
                            for xi in aggs.0..aggs.1 {
                                let prog = code.exprs[xi as usize];
                                self.args.push(
                                    eval(code, prog, t, &mut self.regs).unwrap_or(Value::Null),
                                );
                            }
                            sink.grouped_row(*query, spec, GroupKey(key), &self.args);
                        }
                    }
                }
            }
            if self.tuples.is_empty() {
                // Inner-join semantics: once no tuple survives, later ops
                // can produce nothing.
                break;
            }
        }
        self.tuples.clear();
        stats
    }

    /// Executes `code` once per invocation in `batch` against the same
    /// baggage and sink, returning the summed stats.
    ///
    /// Equivalent to calling [`Vm::run`] for each element of `batch` in
    /// order — byte-identical emitted rows, packed entries, stats, and
    /// retired-op counts — but when [`AdviceByteCode::batchable`] holds,
    /// execution is *op-major*: one dispatch per instruction drives a
    /// working set holding every invocation's live tuples at once, so the
    /// interpreter loop overhead (dispatch, unpack materialization,
    /// baggage bookkeeping) is paid per instruction instead of per
    /// invocation × instruction. Non-batchable programs transparently
    /// fall back to the scalar loop.
    ///
    /// Rows are tagged with their invocation index and kept in
    /// invocation-major order throughout, which is what makes
    /// order-sensitive effects (pack arrival order at retention caps,
    /// emit order, per-invocation early exit) match the scalar loop
    /// exactly.
    pub fn run_batch(
        &mut self,
        code: &AdviceByteCode,
        batch: &[&[(&str, Value)]],
        baggage: &mut Baggage,
        sink: &mut impl EmitSink,
    ) -> VmStats {
        let mut stats = VmStats::default();
        if batch.is_empty() {
            return stats;
        }
        if !code.batchable() {
            for exports in batch {
                let s = self.run(code, exports, baggage, sink);
                stats.unpacked += s.unpacked;
                stats.packed += s.packed;
                stats.emitted += s.emitted;
            }
            return stats;
        }
        if let Some(stats) = self.run_factorized(code, batch, baggage, sink) {
            return stats;
        }
        self.regs.clear();
        self.regs.resize(code.num_regs as usize, Value::Null);
        self.tuples.clear();
        self.src.clear();
        for i in 0..batch.len() {
            self.tuples.push(Tuple::empty());
            self.src.push(i as u32);
        }

        for inst in &code.insts {
            // `src` stays invocation-major, so the live-invocation count
            // is the number of group boundaries. Each live invocation
            // retires this instruction, matching the scalar loop's
            // per-invocation `ops` metering (dead invocations broke out
            // of their scalar run and stopped retiring).
            let mut live = 0usize;
            let mut prev = u32::MAX;
            for &s in &self.src {
                if s != prev {
                    live += 1;
                    prev = s;
                }
            }
            self.ops += live as u64;
            match inst {
                Inst::Observe { names } => {
                    let fields = &code.names[names.0 as usize..names.1 as usize];
                    // Field positions are resolved once against the first
                    // live invocation's export layout; an invocation whose
                    // keys match it (one batch comes from one call site,
                    // so effectively all of them) reads values by direct
                    // index. A mismatched layout falls back to the scalar
                    // name scan, preserving first-match semantics exactly.
                    let first: &[(&str, Value)] = batch[self.src[0] as usize];
                    let idxs: Vec<Option<usize>> = fields
                        .iter()
                        .map(|f| first.iter().position(|(n, _)| *n == f.as_str()))
                        .collect();
                    let mut r = 0usize;
                    while r < self.tuples.len() {
                        let inv = self.src[r];
                        let mut end = r;
                        while end < self.tuples.len() && self.src[end] == inv {
                            end += 1;
                        }
                        // Built once per live invocation, shared by all of
                        // its rows.
                        let row = batch[inv as usize];
                        let observed: Tuple = if same_keys(row, first) {
                            idxs.iter()
                                .map(|i| i.map_or(Value::Null, |i| row[i].1.clone()))
                                .collect()
                        } else {
                            fields
                                .iter()
                                .map(|f| {
                                    row.iter()
                                        .find(|(name, _)| *name == f.as_str())
                                        .map(|(_, v)| v.clone())
                                        .unwrap_or(Value::Null)
                                })
                                .collect()
                        };
                        if end - r == 1 && self.tuples[r].is_empty() {
                            self.tuples[r] = observed;
                        } else {
                            for t in &mut self.tuples[r..end] {
                                *t = t.concat(&observed);
                            }
                        }
                        r = end;
                    }
                }
                Inst::Unpack { slot, temporal, .. } => {
                    // One unpack serves every invocation: `batchable`
                    // guarantees no Pack in this program touches `slot`,
                    // so each invocation's scalar run would have seen the
                    // same baggage contents here.
                    let mut view = baggage.unpack_view(*slot);
                    if let Some(f) = temporal {
                        f.apply(view.to_mut());
                    }
                    let unpacked: &[Tuple] = &view;
                    stats.unpacked += unpacked.len() * live;
                    self.joined.clear();
                    self.joined_src.clear();
                    for (r, t) in self.tuples.iter().enumerate() {
                        for u in unpacked {
                            self.joined.push(t.concat(u));
                            self.joined_src.push(self.src[r]);
                        }
                    }
                    std::mem::swap(&mut self.tuples, &mut self.joined);
                    std::mem::swap(&mut self.src, &mut self.joined_src);
                }
                Inst::Filter { pred } => {
                    let prog = code.exprs[*pred as usize];
                    self.joined.clear();
                    self.joined_src.clear();
                    for (r, t) in self.tuples.drain(..).enumerate() {
                        if matches!(eval(code, prog, &t, &mut self.regs), Ok(Value::Bool(true))) {
                            self.joined.push(t);
                            self.joined_src.push(self.src[r]);
                        }
                    }
                    std::mem::swap(&mut self.tuples, &mut self.joined);
                    std::mem::swap(&mut self.src, &mut self.joined_src);
                }
                Inst::Pack {
                    slot,
                    mode,
                    pre,
                    exprs,
                } => {
                    self.projected.clear();
                    let mut r = 0usize;
                    while r < self.tuples.len() {
                        let inv = self.src[r];
                        let start = self.projected.len();
                        let mut survivors = 0usize;
                        while r < self.tuples.len() && self.src[r] == inv {
                            let t = &self.tuples[r];
                            if passes_pre(code, *pre, t, &mut self.regs) {
                                survivors += 1;
                                if let Ok(p) = project(code, *exprs, t, &mut self.regs) {
                                    self.projected.push(p);
                                }
                            }
                            r += 1;
                        }
                        if survivors > 0 {
                            stats.packed += self.projected.len() - start;
                        }
                    }
                    // One pack call covers every invocation's survivors:
                    // `already_first` reads only inactive instances, which
                    // N sequential packs would not have changed, and rows
                    // arrive in the same invocation-major order. Skipping
                    // the call when nothing projected matches the scalar
                    // empty pack, which stores nothing.
                    if !self.projected.is_empty() {
                        baggage.pack(*slot, mode, self.projected.drain(..));
                    }
                }
                Inst::Trigger { query, pred } => {
                    // One firing per invocation that has a satisfying live
                    // tuple; `src` is invocation-major, so firings arrive
                    // in invocation order (matching N scalar runs).
                    let mut r = 0usize;
                    while r < self.tuples.len() {
                        let inv = self.src[r];
                        let mut fires = false;
                        while r < self.tuples.len() && self.src[r] == inv {
                            if !fires {
                                fires = match pred {
                                    None => true,
                                    Some(p) => {
                                        let prog = code.exprs[*p as usize];
                                        matches!(
                                            eval(code, prog, &self.tuples[r], &mut self.regs),
                                            Ok(Value::Bool(true))
                                        )
                                    }
                                };
                            }
                            r += 1;
                        }
                        if fires {
                            sink.trigger(*query);
                        }
                    }
                }
                Inst::Emit {
                    query,
                    spec,
                    pre,
                    keys,
                    aggs,
                } => {
                    // Rows are invocation-major and `batchable` caps the
                    // program at one Emit, so sink arrival order equals
                    // the scalar loop's. Projection columns are
                    // classified once per op: the single-instruction
                    // field references and literals that dominate key and
                    // aggregate projections bypass the register machine
                    // in the row loop.
                    let key_cols: Vec<FastCol> =
                        (keys.0..keys.1).map(|xi| classify_col(code, xi)).collect();
                    let agg_cols: Vec<FastCol> =
                        (aggs.0..aggs.1).map(|xi| classify_col(code, xi)).collect();
                    // Partial aggregation: when the sink opts in, grouped
                    // rows fold into scratch accumulators here and each
                    // distinct group reaches the sink once per window, in
                    // first-seen order (so a capped sink makes the same
                    // keep/shed decision per group as under per-row
                    // delivery). A consecutive run of rows from one join
                    // usually shares its group, hence the check-last-first
                    // scan.
                    let folding = !spec.streaming && sink.folds_grouped();
                    for i in 0..self.tuples.len() {
                        let t = &self.tuples[i];
                        if !passes_pre(code, *pre, t, &mut self.regs) {
                            continue;
                        }
                        stats.emitted += 1;
                        if spec.streaming {
                            if let Ok(row) = project_cols(code, &key_cols, t, &mut self.regs) {
                                sink.streaming_row(*query, spec, row);
                            }
                        } else {
                            let Ok(key) = project_cols(code, &key_cols, t, &mut self.regs) else {
                                continue;
                            };
                            if !folding {
                                self.args.clear();
                                for col in &agg_cols {
                                    self.args.push(
                                        eval_col(code, col, t, &mut self.regs)
                                            .unwrap_or(Value::Null),
                                    );
                                }
                                sink.grouped_row(*query, spec, GroupKey(key), &self.args);
                                continue;
                            }
                            let j = match self.fold.iter().rev().position(|(k, _, _)| *k == key) {
                                Some(rj) => self.fold.len() - 1 - rj,
                                None => {
                                    if self.fold.len() >= FOLD_WINDOW {
                                        for (k, states, rows) in self.fold.drain(..) {
                                            sink.grouped_fold(
                                                *query,
                                                spec,
                                                GroupKey(k),
                                                &states,
                                                rows,
                                            );
                                        }
                                    }
                                    let states: Vec<AggState> =
                                        spec.aggs.iter().map(|(f, _)| f.init()).collect();
                                    self.fold.push((key, states, 0));
                                    self.fold.len() - 1
                                }
                            };
                            let (_, states, rows) = &mut self.fold[j];
                            *rows += 1;
                            for (st, col) in states.iter_mut().zip(&agg_cols) {
                                let v =
                                    eval_col(code, col, t, &mut self.regs).unwrap_or(Value::Null);
                                st.update(&v);
                            }
                        }
                    }
                    for (k, states, rows) in self.fold.drain(..) {
                        sink.grouped_fold(*query, spec, GroupKey(k), &states, rows);
                    }
                }
            }
            if self.tuples.is_empty() {
                // Every invocation's working set is empty; no later op can
                // produce anything for any of them.
                break;
            }
        }
        self.tuples.clear();
        self.src.clear();
        stats
    }

    /// Factorized execution of the canonical join-aggregation shape —
    /// `[Observe, Filter*, Unpack, Emit{grouped}]` where every group-key
    /// column reads the unpacked side and every aggregate argument reads
    /// the observed side (the paper's §2 query: `GroupBy cl.procName
    /// Select cl.procName, SUM(incr.delta)`).
    ///
    /// The join's cross product is never materialized: all observed rows
    /// fold into *one* partial accumulator set, which is then merged into
    /// each unpacked tuple's group — `O(rows + unpacked)` instead of
    /// `O(rows × unpacked)`. The decomposition is exact for every
    /// aggregate: per group, the cross product contributes the same
    /// observed rows once per matching unpacked tuple, which is exactly
    /// `k` merges of the same partial (`COUNT`/`SUM` scale additively,
    /// `MIN`/`MAX` are idempotent, `AVERAGE`'s ratio is unchanged).
    ///
    /// Group delivery is in unpacked-tuple order, which is the scalar
    /// loop's first-seen group order, so capped sinks shed the same
    /// groups. Returns `None` — leaving the generic batch loop to run —
    /// when the program shape, the expression sides, or the sink
    /// (which must accept [`EmitSink::grouped_fold`]) do not qualify.
    fn run_factorized(
        &mut self,
        code: &AdviceByteCode,
        batch: &[&[(&str, Value)]],
        baggage: &mut Baggage,
        sink: &mut impl EmitSink,
    ) -> Option<VmStats> {
        if !sink.folds_grouped() {
            return None;
        }
        let insts = code.insts.as_slice();
        let Some(Inst::Observe { names }) = insts.first() else {
            return None;
        };
        let mut at = 1;
        let mut filters: Vec<u32> = Vec::new();
        while let Some(Inst::Filter { pred }) = insts.get(at) {
            filters.push(*pred);
            at += 1;
        }
        let Some(Inst::Unpack { slot, temporal, .. }) = insts.get(at) else {
            return None;
        };
        let Some(Inst::Emit {
            query,
            spec,
            pre,
            keys,
            aggs,
        }) = insts.get(at + 1)
        else {
            return None;
        };
        if insts.len() != at + 2 || spec.streaming {
            return None;
        }
        let w_obs = (names.1 - names.0) as u16;
        // Filters sit between Observe and Unpack, so lowering resolved
        // them against the observed schema alone; only the Emit's fused
        // pre-predicates, keys, and aggregates need side analysis.
        let pre_ok = (pre.0..pre.1)
            .all(|xi| matches!(expr_side(code, xi, w_obs), Side::Observed | Side::Neither));
        let key_ok = (keys.0..keys.1)
            .all(|xi| matches!(expr_side(code, xi, w_obs), Side::Unpacked | Side::Neither));
        let agg_ok = (aggs.0..aggs.1)
            .all(|xi| matches!(expr_side(code, xi, w_obs), Side::Observed | Side::Neither));
        if !(pre_ok && key_ok && agg_ok) {
            return None;
        }

        let mut stats = VmStats::default();
        self.regs.clear();
        self.regs.resize(code.num_regs as usize, Value::Null);

        let mut view = baggage.unpack_view(*slot);
        if let Some(f) = temporal {
            f.apply(view.to_mut());
        }
        let unpacked: &[Tuple] = &view;

        // Observed-side pass: resolve field positions once, then fold
        // every invocation that survives the filters and the
        // (observed-pure) pre-predicates into one shared partial
        // accumulator set. Aggregate expressions only load observed
        // columns, so the observed tuple alone is a valid evaluation
        // layout (its columns are the concat prefix). Filter metering
        // mirrors the scalar loop: an invocation retires filters up to
        // and including its first failing one, then nothing after.
        let fields = &code.names[names.0 as usize..names.1 as usize];
        let first: &[(&str, Value)] = batch[0];
        let idxs: Vec<Option<usize>> = fields
            .iter()
            .map(|f| first.iter().position(|(n, _)| *n == f.as_str()))
            .collect();
        let agg_cols: Vec<FastCol> = (aggs.0..aggs.1).map(|xi| classify_col(code, xi)).collect();
        let mut partial: Vec<AggState> = spec.aggs.iter().map(|(f, _)| f.init()).collect();
        let mut filter_retired = 0u64;
        let mut survivors = 0u64;
        let mut contributors = 0u64;
        for row in batch {
            let observed: Tuple = if same_keys(row, first) {
                idxs.iter()
                    .map(|i| i.map_or(Value::Null, |i| row[i].1.clone()))
                    .collect()
            } else {
                fields
                    .iter()
                    .map(|f| {
                        row.iter()
                            .find(|(name, _)| *name == f.as_str())
                            .map(|(_, v)| v.clone())
                            .unwrap_or(Value::Null)
                    })
                    .collect()
            };
            let mut dead = false;
            for pred in &filters {
                filter_retired += 1;
                let prog = code.exprs[*pred as usize];
                if !matches!(
                    eval(code, prog, &observed, &mut self.regs),
                    Ok(Value::Bool(true))
                ) {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            survivors += 1;
            if unpacked.is_empty() || !passes_pre(code, *pre, &observed, &mut self.regs) {
                continue;
            }
            contributors += 1;
            for (st, col) in partial.iter_mut().zip(&agg_cols) {
                let v = eval_col(code, col, &observed, &mut self.regs).unwrap_or(Value::Null);
                st.update(&v);
            }
        }
        // Every invocation retires Observe; filter survivors retire
        // Unpack; with nothing unpacked the scalar loop's working set
        // then empties and Emit is never reached.
        self.ops += batch.len() as u64 + filter_retired + survivors;
        stats.unpacked += unpacked.len() * survivors as usize;
        if unpacked.is_empty() || survivors == 0 {
            return Some(stats);
        }
        self.ops += survivors;
        stats.emitted += contributors as usize * unpacked.len();
        if contributors == 0 {
            return Some(stats);
        }

        // Unpacked-side pass: key expressions only load unpacked columns,
        // so a Null-padded prefix stands in for the observed half of the
        // concat layout.
        let key_cols: Vec<FastCol> = (keys.0..keys.1).map(|xi| classify_col(code, xi)).collect();
        let pad: Tuple = std::iter::repeat_with(|| Value::Null)
            .take(w_obs as usize)
            .collect();
        for u in unpacked {
            let padded = pad.concat(u);
            let Ok(key) = project_cols(code, &key_cols, &padded, &mut self.regs) else {
                continue;
            };
            sink.grouped_fold(*query, spec, GroupKey(key), &partial, contributors);
        }
        Some(stats)
    }
}

/// Which half of an `Observe ++ Unpack` concat layout an expression
/// reads: observed columns (below `w_obs`), unpacked columns, neither
/// (constants only), or both.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    Neither,
    Observed,
    Unpacked,
    Mixed,
}

fn expr_side(code: &AdviceByteCode, xi: u32, w_obs: u16) -> Side {
    let prog = code.exprs[xi as usize];
    let mut side = Side::Neither;
    for inst in &code.einsts[prog.start as usize..(prog.start + prog.len) as usize] {
        if let EInst::Load { col, .. } = inst {
            let s = if *col < w_obs {
                Side::Observed
            } else {
                Side::Unpacked
            };
            side = match side {
                Side::Neither => s,
                cur if cur == s => cur,
                _ => return Side::Mixed,
            };
        }
    }
    side
}

/// `true` when two export slices carry the same key sequence (values may
/// differ), so a field index resolved against one is valid for the other.
fn same_keys(a: &[(&str, Value)], b: &[(&str, Value)]) -> bool {
    // Export slices in one batch overwhelmingly come from one woven call
    // site, so the key names are usually the *same* string data: a
    // pointer+length probe per pair skips the content compare.
    fn same_name(x: &str, y: &str) -> bool {
        (x.as_ptr() == y.as_ptr() && x.len() == y.len()) || x == y
    }
    a.len() == b.len()
        && (std::ptr::eq(a.as_ptr(), b.as_ptr())
            || a.iter().zip(b).all(|((x, _), (y, _))| same_name(x, y)))
}

/// A per-op classification of one lowered expression for the batch row
/// loop (see [`Vm::run_batch`]): the single-instruction field references
/// and constants that dominate key and aggregate projections are executed
/// by direct tuple/pool access, paying classification once per op instead
/// of the register machine once per row.
enum FastCol {
    /// A lone `Load` whose destination is the result register.
    Load(u16),
    /// A lone `Const` whose destination is the result register.
    Const(u16),
    /// Anything else: run [`eval`].
    General(ExprProg),
}

fn classify_col(code: &AdviceByteCode, xi: u32) -> FastCol {
    let prog = code.exprs[xi as usize];
    if prog.len == 1 {
        match &code.einsts[prog.start as usize] {
            EInst::Load { dst, col } if *dst == prog.result => return FastCol::Load(*col),
            EInst::Const { dst, idx } if *dst == prog.result => return FastCol::Const(*idx),
            _ => {}
        }
    }
    FastCol::General(prog)
}

/// Evaluates one classified column against `t` — the batch-loop
/// equivalent of [`eval`] on the expression it was classified from.
fn eval_col(
    code: &AdviceByteCode,
    col: &FastCol,
    t: &Tuple,
    regs: &mut [Value],
) -> Result<Value, EvalFailed> {
    match col {
        FastCol::Load(c) => Ok(t.get(*c as usize).clone()),
        FastCol::Const(i) => Ok(code.consts[*i as usize].clone()),
        FastCol::General(prog) => eval(code, *prog, t, regs),
    }
}

/// [`project`] over classified columns; any evaluation error drops the
/// whole row.
fn project_cols(
    code: &AdviceByteCode,
    cols: &[FastCol],
    t: &Tuple,
    regs: &mut [Value],
) -> Result<Tuple, EvalFailed> {
    cols.iter().map(|c| eval_col(code, c, t, regs)).collect()
}

/// Evaluates every predicate in `pre` against `t`; a tuple passes only
/// when all evaluate to `Ok(Bool(true))`.
fn passes_pre(code: &AdviceByteCode, pre: PoolRange, t: &Tuple, regs: &mut [Value]) -> bool {
    (pre.0..pre.1).all(|xi| {
        let prog = code.exprs[xi as usize];
        matches!(eval(code, prog, t, regs), Ok(Value::Bool(true)))
    })
}

/// Projects `t` through the expressions in `range`; any evaluation error
/// drops the whole row.
fn project(
    code: &AdviceByteCode,
    range: PoolRange,
    t: &Tuple,
    regs: &mut [Value],
) -> Result<Tuple, EvalFailed> {
    (range.0..range.1)
        .map(|xi| eval(code, code.exprs[xi as usize], t, regs))
        .collect()
}

/// Runs one lowered expression over `t`.
fn eval(
    code: &AdviceByteCode,
    prog: ExprProg,
    t: &Tuple,
    regs: &mut [Value],
) -> Result<Value, EvalFailed> {
    let insts = &code.einsts[prog.start as usize..(prog.start + prog.len) as usize];
    let mut pc = 0usize;
    while pc < insts.len() {
        match &insts[pc] {
            EInst::Load { dst, col } => {
                regs[*dst as usize] = t.get(*col as usize).clone();
            }
            EInst::Const { dst, idx } => {
                regs[*dst as usize] = code.consts[*idx as usize].clone();
            }
            EInst::Unary { dst, op, src } => {
                let v = eval_unary(*op, &regs[*src as usize]).map_err(|_| EvalFailed)?;
                regs[*dst as usize] = v;
            }
            EInst::Binary { dst, op, lhs, rhs } => {
                let v = eval_binary(*op, &regs[*lhs as usize], &regs[*rhs as usize])
                    .map_err(|_| EvalFailed)?;
                regs[*dst as usize] = v;
            }
            EInst::CoerceBool { dst, src } => match regs[*src as usize] {
                Value::Bool(b) => regs[*dst as usize] = Value::Bool(b),
                _ => return Err(EvalFailed),
            },
            EInst::SkipIfBool { src, when, skip } => {
                if regs[*src as usize] == Value::Bool(*when) {
                    pc += *skip as usize;
                }
            }
            EInst::Fail => return Err(EvalFailed),
        }
        pc += 1;
    }
    // Take the result by move: registers are written before read within an
    // expression (stack-disciplined allocation), so leaving Null behind is
    // invisible to subsequent evaluations.
    Ok(std::mem::replace(
        &mut regs[prog.result as usize],
        Value::Null,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_model::AggFunc;

    fn observe(alias: &str, fields: &[&str]) -> AdviceOp {
        AdviceOp::Observe {
            alias: alias.into(),
            fields: fields.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    fn run_collect(
        program: &AdviceProgram,
        exports: &[(&str, Value)],
        baggage: &mut Baggage,
    ) -> (CollectSink, VmStats) {
        let lowered = lower_program(program);
        lowered.code.validate().expect("lowered bytecode validates");
        let mut vm = Vm::new();
        let mut sink = CollectSink::default();
        let stats = vm.run(&lowered.code, exports, baggage, &mut sink);
        (sink, stats)
    }

    #[test]
    fn observe_filter_pack_unpack_emit_pipeline() {
        let slot = QueryId(300);
        let a1 = AdviceProgram {
            tracepoints: vec!["ClientProtocols".into()],
            ops: vec![
                observe("cl", &["procName"]),
                AdviceOp::Pack {
                    slot,
                    mode: PackMode::First(1),
                    exprs: vec![Expr::field("cl.procName")],
                    names: vec!["cl.procName".into()],
                },
            ],
        };
        let a2 = AdviceProgram {
            tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
            ops: vec![
                observe("incr", &["delta"]),
                AdviceOp::Unpack {
                    slot,
                    schema: Schema::new(["cl.procName"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec {
                        key_exprs: vec![Expr::field("cl.procName")],
                        key_names: vec!["cl.procName".into()],
                        aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
                        agg_names: vec!["SUM(incr.delta)".into()],
                        columns: vec![
                            crate::advice::ColumnRef::Key(0),
                            crate::advice::ColumnRef::Agg(0),
                        ],
                        streaming: false,
                        ..OutputSpec::default()
                    }),
                },
            ],
        };

        let mut bag = Baggage::new();
        let (sink, s1) = run_collect(&a1, &[("procName", Value::str("HGet"))], &mut bag);
        assert!(sink.grouped.is_empty() && sink.raw.is_empty());
        assert_eq!(s1.packed, 1);

        let (sink, s2) = run_collect(&a2, &[("delta", Value::I64(4096))], &mut bag);
        assert_eq!(s2.unpacked, 1);
        assert_eq!(s2.emitted, 1);
        assert_eq!(sink.grouped.len(), 1);
        let (_, key, args) = &sink.grouped[0];
        assert_eq!(key.0.get(0), &Value::str("HGet"));
        assert_eq!(args, &vec![Value::I64(4096)]);
    }

    #[test]
    fn short_circuit_matches_tree_walk() {
        // `false && <unknown field>`: the unknown field must not be reached.
        let program = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Filter {
                    pred: Expr::bin(
                        BinOp::Or,
                        Expr::bin(BinOp::Lt, Expr::field("e.x"), Expr::lit(10)),
                        Expr::field("e.ghost"),
                    ),
                },
                AdviceOp::Pack {
                    slot: QueryId(7),
                    mode: PackMode::All,
                    exprs: vec![Expr::field("e.x")],
                    names: vec!["e.x".into()],
                },
            ],
        };
        let mut bag = Baggage::new();
        // lhs true → rhs (which lowers to Fail) skipped → tuple survives.
        let (_, s) = run_collect(&program, &[("x", Value::I64(5))], &mut bag);
        assert_eq!(s.packed, 1);
        // lhs false → rhs evaluated → Fail → tuple dropped.
        let (_, s) = run_collect(&program, &[("x", Value::I64(50))], &mut bag);
        assert_eq!(s.packed, 0);
    }

    #[test]
    fn validate_rejects_out_of_range_references() {
        let program = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Filter {
                    pred: Expr::bin(BinOp::Lt, Expr::field("e.x"), Expr::lit(10)),
                },
            ],
        };
        let mut code = lower_program(&program).code;
        code.validate().expect("valid as lowered");
        code.num_regs = 0;
        assert!(code.validate().is_err());

        let mut code = lower_program(&program).code;
        if let Some(EInst::Const { idx, .. }) = code
            .einsts
            .iter_mut()
            .find(|i| matches!(i, EInst::Const { .. }))
        {
            *idx = 99;
        }
        assert!(code.validate().is_err());
    }

    #[test]
    fn constant_pool_is_representation_exact() {
        let program = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Pack {
                    slot: QueryId(7),
                    mode: PackMode::All,
                    exprs: vec![
                        Expr::lit(Value::I64(5)),
                        Expr::lit(Value::U64(5)),
                        Expr::lit(Value::I64(5)),
                    ],
                    names: vec!["a".into(), "b".into(), "c".into()],
                },
            ],
        };
        let code = lower_program(&program).code;
        // I64(5) deduped, U64(5) kept distinct despite loose equality.
        assert_eq!(code.consts.len(), 2);
    }

    #[test]
    fn unresolved_fields_note_and_fail() {
        let program = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Filter {
                    pred: Expr::field("ghost"),
                },
                AdviceOp::Pack {
                    slot: QueryId(7),
                    mode: PackMode::All,
                    exprs: vec![Expr::field("e.x")],
                    names: vec!["e.x".into()],
                },
            ],
        };
        let lowered = lower_program(&program);
        assert_eq!(lowered.notes.len(), 1, "one unresolved-field note");
        let mut bag = Baggage::new();
        let mut vm = Vm::new();
        let mut sink = CollectSink::default();
        let stats = vm.run(&lowered.code, &[("x", Value::I64(1))], &mut bag, &mut sink);
        assert_eq!(stats.packed, 0, "failing predicate drops every tuple");
    }

    /// Emit-side program: observe `delta`, filter, join against `slot`,
    /// emit a grouped SUM keyed by the unpacked process name.
    fn emit_side(slot: QueryId) -> AdviceProgram {
        AdviceProgram {
            tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
            ops: vec![
                observe("incr", &["delta"]),
                AdviceOp::Filter {
                    pred: Expr::bin(BinOp::Lt, Expr::field("incr.delta"), Expr::lit(100)),
                },
                AdviceOp::Unpack {
                    slot,
                    schema: Schema::new(["cl.procName"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec {
                        key_exprs: vec![Expr::field("cl.procName")],
                        key_names: vec!["cl.procName".into()],
                        aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
                        agg_names: vec!["SUM(incr.delta)".into()],
                        columns: vec![
                            crate::advice::ColumnRef::Key(0),
                            crate::advice::ColumnRef::Agg(0),
                        ],
                        streaming: false,
                        ..OutputSpec::default()
                    }),
                },
            ],
        }
    }

    /// Pack-side program with a retention-capped mode, to exercise the
    /// single-combined-pack path against per-invocation packs.
    fn pack_side(slot: QueryId, mode: PackMode) -> AdviceProgram {
        AdviceProgram {
            tracepoints: vec!["ClientProtocols".into()],
            ops: vec![
                observe("cl", &["procName"]),
                AdviceOp::Pack {
                    slot,
                    mode,
                    exprs: vec![Expr::field("cl.procName")],
                    names: vec!["cl.procName".into()],
                },
            ],
        }
    }

    /// Runs `code` over `batch` twice — once per-invocation with
    /// [`Vm::run`], once with [`Vm::run_batch`] — against clones of `bag`
    /// and asserts every observable matches: emitted rows, stats,
    /// retired-op deltas, and the serialized baggage.
    fn assert_batch_matches_scalar(
        code: &AdviceByteCode,
        batch: &[&[(&str, Value)]],
        bag: &Baggage,
    ) {
        let mut bag_scalar = bag.clone();
        let mut vm_scalar = Vm::new();
        let mut sink_scalar = CollectSink::default();
        let mut scalar = VmStats::default();
        for exports in batch {
            let s = vm_scalar.run(code, exports, &mut bag_scalar, &mut sink_scalar);
            scalar.unpacked += s.unpacked;
            scalar.packed += s.packed;
            scalar.emitted += s.emitted;
        }

        let mut bag_batch = bag.clone();
        let mut vm_batch = Vm::new();
        let mut sink_batch = CollectSink::default();
        let batched = vm_batch.run_batch(code, batch, &mut bag_batch, &mut sink_batch);

        assert_eq!(
            (batched.unpacked, batched.packed, batched.emitted),
            (scalar.unpacked, scalar.packed, scalar.emitted),
            "stats diverge"
        );
        assert_eq!(
            vm_batch.ops(),
            vm_scalar.ops(),
            "retired-op metering diverges"
        );
        assert_eq!(sink_batch.raw, sink_scalar.raw, "streaming rows diverge");
        assert_eq!(
            sink_batch.grouped, sink_scalar.grouped,
            "grouped rows diverge"
        );
        assert_eq!(
            bag_batch.to_bytes(),
            bag_scalar.to_bytes(),
            "baggage bytes diverge"
        );
    }

    /// An [`EmitSink`] that opts into batch-folded grouped delivery and
    /// aggregates either delivery style into final per-group states, so
    /// the scalar per-row path and the batch fold path land in one
    /// comparable representation.
    #[derive(Default)]
    struct FoldSink {
        raw: Vec<(QueryId, Tuple)>,
        /// `(query, key, states, rows)` in first-seen group order.
        groups: Vec<(QueryId, GroupKey, Vec<AggState>, u64)>,
    }

    impl FoldSink {
        fn slot(
            &mut self,
            query: QueryId,
            spec: &Arc<OutputSpec>,
            key: GroupKey,
        ) -> &mut (QueryId, GroupKey, Vec<AggState>, u64) {
            if let Some(i) = self
                .groups
                .iter()
                .position(|(q, k, _, _)| *q == query && *k == key)
            {
                return &mut self.groups[i];
            }
            let states = spec.aggs.iter().map(|(f, _)| f.init()).collect();
            self.groups.push((query, key, states, 0));
            self.groups.last_mut().expect("just pushed")
        }

        /// `(query, key, finalized values, rows)` per group, in
        /// first-seen order.
        fn finished(&self) -> Vec<(QueryId, GroupKey, Vec<Value>, u64)> {
            self.groups
                .iter()
                .map(|(q, k, states, rows)| {
                    (
                        *q,
                        k.clone(),
                        states.iter().map(AggState::finish).collect(),
                        *rows,
                    )
                })
                .collect()
        }
    }

    impl EmitSink for FoldSink {
        fn streaming_row(&mut self, query: QueryId, _spec: &Arc<OutputSpec>, row: Tuple) {
            self.raw.push((query, row));
        }
        fn grouped_row(
            &mut self,
            query: QueryId,
            spec: &Arc<OutputSpec>,
            key: GroupKey,
            args: &[Value],
        ) {
            let (_, _, states, rows) = self.slot(query, spec, key);
            *rows += 1;
            for (st, arg) in states.iter_mut().zip(args) {
                st.update(arg);
            }
        }
        fn folds_grouped(&self) -> bool {
            true
        }
        fn grouped_fold(
            &mut self,
            query: QueryId,
            spec: &Arc<OutputSpec>,
            key: GroupKey,
            partial: &[AggState],
            rows: u64,
        ) {
            let (_, _, states, r) = self.slot(query, spec, key);
            *r += rows;
            for (st, p) in states.iter_mut().zip(partial) {
                st.merge(p);
            }
        }
    }

    /// Folding twin of [`assert_batch_matches_scalar`]: the batch run's
    /// sink accepts [`EmitSink::grouped_fold`] (exercising the factorized
    /// join path and the generic batch fold when the program qualifies),
    /// and the final per-group accumulators — in first-seen group order —
    /// plus row counts, stats, op metering, and baggage must all match
    /// the scalar per-row run.
    fn assert_batch_matches_scalar_folding(
        code: &AdviceByteCode,
        batch: &[&[(&str, Value)]],
        bag: &Baggage,
    ) {
        let mut bag_scalar = bag.clone();
        let mut vm_scalar = Vm::new();
        let mut sink_scalar = FoldSink::default();
        let mut scalar = VmStats::default();
        for exports in batch {
            let s = vm_scalar.run(code, exports, &mut bag_scalar, &mut sink_scalar);
            scalar.unpacked += s.unpacked;
            scalar.packed += s.packed;
            scalar.emitted += s.emitted;
        }

        let mut bag_batch = bag.clone();
        let mut vm_batch = Vm::new();
        let mut sink_batch = FoldSink::default();
        let batched = vm_batch.run_batch(code, batch, &mut bag_batch, &mut sink_batch);

        assert_eq!(
            (batched.unpacked, batched.packed, batched.emitted),
            (scalar.unpacked, scalar.packed, scalar.emitted),
            "stats diverge"
        );
        assert_eq!(
            vm_batch.ops(),
            vm_scalar.ops(),
            "retired-op metering diverges"
        );
        assert_eq!(sink_batch.raw, sink_scalar.raw, "streaming rows diverge");
        assert_eq!(
            sink_batch.finished(),
            sink_scalar.finished(),
            "folded groups diverge"
        );
        assert_eq!(
            bag_batch.to_bytes(),
            bag_scalar.to_bytes(),
            "baggage bytes diverge"
        );
    }

    #[test]
    fn factorized_join_matches_scalar() {
        // The canonical shape with a fan-out join: three packed client
        // tuples, two sharing a group key (so one group receives the
        // shared partial twice), a filtered-out row, and a row with a
        // missing export.
        let slot = QueryId(300);
        let emitter = lower_program(&emit_side(slot)).code;
        let mut bag = Baggage::new();
        bag.pack(
            slot,
            &PackMode::All,
            [
                Tuple::from_iter([Value::str("HGet")]),
                Tuple::from_iter([Value::str("Scan")]),
                Tuple::from_iter([Value::str("HGet")]),
            ],
        );
        let batch: Vec<&[(&str, Value)]> = vec![
            &[("delta", Value::I64(40))],
            &[("delta", Value::I64(400))],
            &[("delta", Value::I64(2))],
            &[("other", Value::I64(1))],
        ];
        assert_batch_matches_scalar_folding(&emitter, &batch, &bag);
    }

    #[test]
    fn factorized_join_empty_slot_and_dead_batch() {
        let slot = QueryId(300);
        let emitter = lower_program(&emit_side(slot)).code;
        // Nothing packed: every invocation dies at the unpack.
        let batch: Vec<&[(&str, Value)]> =
            vec![&[("delta", Value::I64(1))], &[("delta", Value::I64(2))]];
        assert_batch_matches_scalar_folding(&emitter, &batch, &Baggage::new());
        // Everything filtered out before the join.
        let mut bag = Baggage::new();
        bag.pack(
            slot,
            &PackMode::All,
            [Tuple::from_iter([Value::str("HGet")])],
        );
        let dead: Vec<&[(&str, Value)]> =
            vec![&[("delta", Value::I64(400))], &[("delta", Value::I64(500))]];
        assert_batch_matches_scalar_folding(&emitter, &dead, &bag);
    }

    #[test]
    fn factorized_bails_on_observed_side_keys() {
        // GroupBy over an *observed* column: the factorization condition
        // fails and the generic batch fold must still match scalar.
        let slot = QueryId(300);
        let program = AdviceProgram {
            tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
            ops: vec![
                observe("incr", &["delta"]),
                AdviceOp::Unpack {
                    slot,
                    schema: Schema::new(["cl.procName"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec {
                        key_exprs: vec![Expr::field("incr.delta")],
                        key_names: vec!["incr.delta".into()],
                        aggs: vec![(AggFunc::Count, Expr::lit(1))],
                        agg_names: vec!["COUNT".into()],
                        columns: vec![
                            crate::advice::ColumnRef::Key(0),
                            crate::advice::ColumnRef::Agg(0),
                        ],
                        streaming: false,
                        ..OutputSpec::default()
                    }),
                },
            ],
        };
        let code = lower_program(&program).code;
        let mut bag = Baggage::new();
        bag.pack(
            slot,
            &PackMode::All,
            [
                Tuple::from_iter([Value::str("HGet")]),
                Tuple::from_iter([Value::str("Scan")]),
            ],
        );
        let batch: Vec<&[(&str, Value)]> = vec![
            &[("delta", Value::I64(7))],
            &[("delta", Value::I64(7))],
            &[("delta", Value::I64(9))],
        ];
        assert_batch_matches_scalar_folding(&code, &batch, &bag);
    }

    #[test]
    fn batchable_gates_structural_hazards() {
        let slot = QueryId(300);
        assert!(lower_program(&emit_side(slot)).code.batchable());
        assert!(lower_program(&pack_side(slot, PackMode::All))
            .code
            .batchable());

        // Pack and Unpack on the same slot: invocation i+1's unpack must
        // see invocation i's pack, which op-major order cannot honor.
        let mut hazard = pack_side(slot, PackMode::All);
        hazard.ops.push(AdviceOp::Unpack {
            slot,
            schema: Schema::new(["cl.procName"]),
            post_filter: None,
        });
        assert!(!lower_program(&hazard).code.batchable());

        // Two Emits: scalar order interleaves per invocation.
        let mut two_emits = emit_side(slot);
        let emit = two_emits.ops.last().cloned().expect("emit op");
        two_emits.ops.push(emit);
        assert!(!lower_program(&two_emits).code.batchable());
    }

    #[test]
    fn run_batch_matches_sequential_runs_on_join_emit() {
        let slot = QueryId(300);
        let packer = lower_program(&pack_side(slot, PackMode::First(1))).code;
        let emitter = lower_program(&emit_side(slot)).code;
        emitter.validate().expect("valid");

        let mut bag = Baggage::new();
        let mut vm = Vm::new();
        let mut sink = CollectSink::default();
        vm.run(
            &packer,
            &[("procName", Value::str("HGet"))],
            &mut bag,
            &mut sink,
        );

        // Mixed batch: rows 0/2 pass the `delta < 100` filter, row 1 is
        // dropped (exercising per-invocation early exit), row 3 has a
        // missing export.
        let batch: Vec<&[(&str, Value)]> = vec![
            &[("delta", Value::I64(40))],
            &[("delta", Value::I64(400))],
            &[("delta", Value::I64(2))],
            &[("other", Value::I64(1))],
        ];
        assert_batch_matches_scalar(&emitter, &batch, &bag);
    }

    #[test]
    fn run_batch_matches_sequential_runs_on_capped_pack() {
        let slot = QueryId(300);
        for mode in [
            PackMode::All,
            PackMode::First(2),
            PackMode::Recent(2),
            PackMode::GroupAgg {
                key_len: 1,
                aggs: vec![AggFunc::Count],
            },
        ] {
            let packer = lower_program(&pack_side(slot, mode)).code;
            let names = ["a", "b", "c", "d"];
            let exports: Vec<[(&str, Value); 1]> = names
                .iter()
                .map(|n| [("procName", Value::str(n))])
                .collect();
            let batch: Vec<&[(&str, Value)]> = exports.iter().map(|e| e.as_slice()).collect();
            assert_batch_matches_scalar(&packer, &batch, &Baggage::new());
        }
    }

    #[test]
    fn run_batch_falls_back_for_non_batchable_programs() {
        // Pack-then-unpack on one slot: not batchable, so run_batch must
        // take the scalar fallback — invocation i+1 sees invocation i's
        // pack, which the equivalence harness verifies.
        let slot = QueryId(300);
        let mut program = pack_side(slot, PackMode::All);
        program.ops.push(AdviceOp::Unpack {
            slot,
            schema: Schema::new(["packed.procName"]),
            post_filter: None,
        });
        program.ops.push(AdviceOp::Emit {
            query: QueryId(1),
            spec: Arc::new(OutputSpec {
                key_exprs: vec![Expr::field("packed.procName")],
                key_names: vec!["packed.procName".into()],
                columns: vec![crate::advice::ColumnRef::Key(0)],
                streaming: true,
                ..OutputSpec::default()
            }),
        });
        let code = lower_program(&program).code;
        assert!(!code.batchable());
        let exports = [
            [("procName", Value::str("a"))],
            [("procName", Value::str("b"))],
        ];
        let batch: Vec<&[(&str, Value)]> = exports.iter().map(|e| e.as_slice()).collect();
        assert_batch_matches_scalar(&code, &batch, &Baggage::new());
    }

    #[test]
    fn run_batch_of_one_equals_run() {
        let slot = QueryId(300);
        let code = lower_program(&emit_side(slot)).code;
        let mut bag = Baggage::new();
        bag.pack(
            slot,
            &PackMode::All,
            [Tuple::from_iter([Value::str("HGet")])],
        );
        let batch: Vec<&[(&str, Value)]> = vec![&[("delta", Value::I64(7))]];
        assert_batch_matches_scalar(&code, &batch, &bag);
        // And the empty batch is a no-op.
        let mut vm = Vm::new();
        let mut sink = CollectSink::default();
        let stats = vm.run_batch(&code, &[], &mut bag.clone(), &mut sink);
        assert_eq!((stats.unpacked, stats.packed, stats.emitted), (0, 0, 0));
        assert_eq!(vm.ops(), 0);
    }
}
