//! Query compilation: AST → optimized plan → advice.
//!
//! The compiler flattens the query (inlining named sub-query references,
//! paper Q9), assigns `Where` clauses to the earliest stage that can
//! evaluate them (selection pushdown, σ rules of Table 3), computes the
//! minimal field set each pack boundary must carry (projection pushdown,
//! Π rules), converts temporal filters into bounded pack modes, and — when
//! every aggregate of the final `Select` is computable on the packed side —
//! rewrites the last boundary into a grouped aggregation pack (the
//! `A`/`GA` rules with their `Combine` functions).

use std::collections::HashMap;
use std::fmt;

use pivot_baggage::PackMode;
use pivot_model::{AggFunc, Expr, Value};

use crate::advice::{AdviceOp, AdviceProgram, ColumnRef, CompiledQuery, OutputSpec};
use crate::ast::{Query, SelectItem, Source, SourceKind, TemporalFilter};
use crate::parser::parse;
use crate::plan::{QueryPlan, Stage, StageSink, UnpackEdge};
use pivot_baggage::QueryId;

/// Resolves names the compiler cannot interpret alone.
pub trait Resolver {
    /// Returns the export names of a tracepoint (including the default
    /// exports `host`, `timestamp`, `procid`, `procname`, `tracepoint`),
    /// or `None` if no such tracepoint is defined.
    fn tracepoint_exports(&self, name: &str) -> Option<Vec<String>>;

    /// Returns the AST of a previously installed query with this name, or
    /// `None` if the name does not refer to a query.
    fn query_ast(&self, name: &str) -> Option<Query>;
}

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Apply the Table 3 rewrite rules. Disabled for the unoptimized
    /// baseline (paper Figure 6a): everything observable is packed raw,
    /// all filtering and aggregation happens at the emit stage, and
    /// temporal filters apply at unpack time.
    pub optimize: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options { optimize: true }
    }
}

impl Options {
    /// Returns options with the optimizer disabled.
    pub fn unoptimized() -> Options {
        Options { optimize: false }
    }
}

/// Errors reported by the compiler.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// The query text failed to parse.
    Parse(String),
    /// The `From` clause must name tracepoints, not a query reference.
    FromMustBeTracepoints,
    /// A tracepoint name is not defined.
    UnknownTracepoint(String),
    /// A field reference could not be resolved to any alias.
    UnknownField(String),
    /// A referenced export is not provided by a tracepoint.
    UnknownExport {
        /// The tracepoint.
        tracepoint: String,
        /// The missing export.
        field: String,
    },
    /// An alias is declared twice.
    DuplicateAlias(String),
    /// An `On` clause does not mention the join's own alias.
    BadJoin(String),
    /// Queries are limited to 250 stages.
    TooManyStages,
    /// A bare alias was used as a value but the alias has several columns.
    AliasNotScalar(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(m) => write!(f, "{m}"),
            CompileError::FromMustBeTracepoints => {
                write!(f, "the From clause must name tracepoints")
            }
            CompileError::UnknownTracepoint(t) => {
                write!(f, "unknown tracepoint `{t}`")
            }
            CompileError::UnknownField(x) => {
                write!(f, "cannot resolve field `{x}`")
            }
            CompileError::UnknownExport { tracepoint, field } => {
                write!(f, "tracepoint `{tracepoint}` does not export `{field}`")
            }
            CompileError::DuplicateAlias(a) => {
                write!(f, "alias `{a}` declared twice")
            }
            CompileError::BadJoin(a) => write!(
                f,
                "join `{a}`: the On clause must relate the new alias to an \
                 existing one"
            ),
            CompileError::TooManyStages => {
                write!(f, "query exceeds 250 stages")
            }
            CompileError::AliasNotScalar(a) => {
                write!(f, "alias `{a}` used as a value but it has several columns")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles query text into advice programs.
///
/// `name` registers the query for reference by later queries; `id` is the
/// installation identity assigned by the frontend.
///
/// # Errors
///
/// Returns a [`CompileError`] on parse failure or semantic problems.
pub fn compile(
    text: &str,
    name: &str,
    id: QueryId,
    resolver: &dyn Resolver,
    options: Options,
) -> Result<CompiledQuery, CompileError> {
    let ast = parse(text).map_err(|e| CompileError::Parse(e.to_string()))?;
    let plan = plan_query(&ast, resolver, options)?;
    Ok(lower(plan, name, text, id))
}

/// Compiles a parsed query into a plan (exposed for plan inspection and the
/// optimizer ablation).
pub fn plan_query(
    ast: &Query,
    resolver: &dyn Resolver,
    options: Options,
) -> Result<QueryPlan, CompileError> {
    let mut b = Builder {
        resolver,
        optimize: options.optimize,
        nodes: Vec::new(),
        wheres: Vec::new(),
    };
    let (sink, scope) = b.add_query(ast, "")?;
    debug_assert_eq!(sink, 0);
    b.finish(ast, scope)
}

// ---------------------------------------------------------------------------
// Builder internals
// ---------------------------------------------------------------------------

/// A clause consumer: which node evaluates an expression.
#[derive(Clone, Debug)]
struct Ref {
    producer: usize,
    field: String,
}

/// The flattened emit specification of an inlined sub-query.
#[derive(Clone, Debug)]
struct Inline {
    /// Output columns: (name, select item with canonical exprs).
    select: Vec<(String, SelectItem)>,
    /// Canonical group-by key expressions (with names).
    group_keys: Vec<(String, Expr)>,
    /// Temporal filter the *outer* query applied to this source.
    outer_temporal: Option<TemporalFilter>,
}

struct Node {
    alias: String,
    tracepoints: Vec<String>,
    exports: Vec<String>,
    temporal: Option<TemporalFilter>,
    succ: Option<usize>,
    preds: Vec<usize>,
    inline: Option<Inline>,
    /// Fields of this node's alias referenced anywhere (canonical names).
    observed: Vec<String>,
    /// Fields that must flow through this node's pack (canonical names).
    out_fields: Vec<String>,
    /// `Where` clauses assigned here.
    filters: Vec<Expr>,
}

struct Builder<'r> {
    resolver: &'r dyn Resolver,
    optimize: bool,
    nodes: Vec<Node>,
    /// All `Where` clauses (canonical) with their reference lists.
    wheres: Vec<(Expr, Vec<Ref>)>,
}

impl<'r> Builder<'r> {
    /// Flattens `ast` (recursively inlining query references) and returns
    /// the index of its sink node.
    fn add_query(
        &mut self,
        ast: &Query,
        prefix: &str,
    ) -> Result<(usize, HashMap<String, usize>), CompileError> {
        // Per-level scope: alias → node index.
        let mut scope: HashMap<String, usize> = HashMap::new();

        // The From source: must be tracepoints.
        let SourceKind::Tracepoints(names) = &ast.from.kind else {
            return Err(CompileError::FromMustBeTracepoints);
        };
        let names = self.classify(names)?;
        let SourceKind::Tracepoints(tps) = names else {
            return Err(CompileError::FromMustBeTracepoints);
        };
        let sink = self.new_node(&ast.from, prefix, tps, None, &mut scope)?;

        // Joins, in declaration order.
        for join in &ast.joins {
            let new_alias = &join.source.alias;
            // The new alias must be the causally-earlier side; the later
            // side must be an existing alias (an unknown later name is
            // tolerated as the main alias — the paper's Q9 writes `end`).
            if &join.earlier != new_alias {
                return Err(CompileError::BadJoin(new_alias.clone()));
            }
            let later = match scope.get(&join.later) {
                Some(&idx) => idx,
                None => sink,
            };
            let SourceKind::Tracepoints(names) = &join.source.kind else {
                // QueryRef already classified below.
                unreachable!("parser only produces tracepoint sources")
            };
            match self.classify(names)? {
                SourceKind::Tracepoints(tps) => {
                    let n = self.new_node(&join.source, prefix, tps, Some(later), &mut scope)?;
                    self.nodes[later].preds.push(n);
                }
                SourceKind::QueryRef(qname) => {
                    let sub = self.resolver.query_ast(&qname).expect("classify checked");
                    let sub_prefix = format!("{prefix}{}::", join.source.alias);
                    let (sub_sink, sub_scope) = self.add_query(&sub, &sub_prefix)?;
                    // Convert the sub-query's emit stage into a pack stage
                    // bound to the outer alias.
                    let inline = self.build_inline(
                        &sub,
                        &sub_scope,
                        &join.source.alias,
                        join.source.filter,
                        sub_sink,
                    )?;
                    self.nodes[sub_sink].inline = Some(inline);
                    self.nodes[sub_sink].succ = Some(later);
                    self.nodes[later].preds.push(sub_sink);
                    if scope.insert(join.source.alias.clone(), sub_sink).is_some() {
                        return Err(CompileError::DuplicateAlias(join.source.alias.clone()));
                    }
                }
            }
        }

        // Canonicalize this level's Where clauses.
        for w in &ast.wheres {
            let (expr, refs) = self.canon_expr(w, &scope)?;
            self.wheres.push((expr, refs));
        }

        // Remember observation demands from this level's select / group-by
        // (the top level handles them in `finish`; sub levels in
        // `build_inline`). Nothing to do here.
        if self.nodes.len() > 250 {
            return Err(CompileError::TooManyStages);
        }
        Ok((sink, scope))
    }

    /// Creates a node for a plain tracepoint source.
    fn new_node(
        &mut self,
        source: &Source,
        prefix: &str,
        tracepoints: Vec<String>,
        succ: Option<usize>,
        scope: &mut HashMap<String, usize>,
    ) -> Result<usize, CompileError> {
        let mut exports: Vec<String> = Vec::new();
        for tp in &tracepoints {
            let e = self
                .resolver
                .tracepoint_exports(tp)
                .ok_or_else(|| CompileError::UnknownTracepoint(tp.clone()))?;
            for f in e {
                if !exports.contains(&f) {
                    exports.push(f);
                }
            }
        }
        let alias = format!("{prefix}{}", source.alias);
        let idx = self.nodes.len();
        self.nodes.push(Node {
            alias,
            tracepoints,
            exports,
            temporal: source.filter,
            succ,
            preds: Vec::new(),
            inline: None,
            observed: Vec::new(),
            out_fields: Vec::new(),
            filters: Vec::new(),
        });
        if scope.insert(source.alias.clone(), idx).is_some() {
            return Err(CompileError::DuplicateAlias(source.alias.clone()));
        }
        Ok(idx)
    }

    /// Decides whether a single-name source refers to an installed query.
    fn classify(&self, names: &[String]) -> Result<SourceKind, CompileError> {
        if names.len() == 1 && self.resolver.query_ast(&names[0]).is_some() {
            return Ok(SourceKind::QueryRef(names[0].clone()));
        }
        for n in names {
            if self.resolver.tracepoint_exports(n).is_none() {
                return Err(CompileError::UnknownTracepoint(n.clone()));
            }
        }
        Ok(SourceKind::Tracepoints(names.to_vec()))
    }

    /// Canonicalizes an expression against `scope`: every field reference
    /// becomes `node_alias.field` (or an inline output column name), and
    /// the references are recorded.
    fn canon_expr(
        &self,
        expr: &Expr,
        scope: &HashMap<String, usize>,
    ) -> Result<(Expr, Vec<Ref>), CompileError> {
        let mut refs = Vec::new();
        let out = self.canon_rec(expr, scope, &mut refs)?;
        Ok((out, refs))
    }

    fn canon_rec(
        &self,
        expr: &Expr,
        scope: &HashMap<String, usize>,
        refs: &mut Vec<Ref>,
    ) -> Result<Expr, CompileError> {
        Ok(match expr {
            Expr::Field(name) => {
                let (producer, canonical) = self.resolve_field(name, scope)?;
                refs.push(Ref {
                    producer,
                    field: canonical.clone(),
                });
                Expr::Field(canonical)
            }
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(self.canon_rec(e, scope, refs)?)),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(self.canon_rec(l, scope, refs)?),
                Box::new(self.canon_rec(r, scope, refs)?),
            ),
        })
    }

    fn resolve_field(
        &self,
        name: &str,
        scope: &HashMap<String, usize>,
    ) -> Result<(usize, String), CompileError> {
        if let Some((prefix, rest)) = name.split_once('.') {
            if let Some(&idx) = scope.get(prefix) {
                let node = &self.nodes[idx];
                if let Some(inline) = &node.inline {
                    // Reference into a sub-query's output columns.
                    let want_exact = format!("{prefix}.{rest}");
                    for (col, _) in &inline.select {
                        if col == &want_exact || col.rsplit('.').next() == Some(rest) {
                            return Ok((idx, col.clone()));
                        }
                    }
                    return Err(CompileError::UnknownField(name.to_owned()));
                }
                return Ok((idx, format!("{}.{}", node.alias, rest)));
            }
            return Err(CompileError::UnknownField(name.to_owned()));
        }
        // Bare alias used as a value: single-column inline output.
        if let Some(&idx) = scope.get(name) {
            if let Some(inline) = &self.nodes[idx].inline {
                if inline.select.len() == 1 {
                    return Ok((idx, inline.select[0].0.clone()));
                }
                return Err(CompileError::AliasNotScalar(name.to_owned()));
            }
            return Err(CompileError::AliasNotScalar(name.to_owned()));
        }
        Err(CompileError::UnknownField(name.to_owned()))
    }

    /// Builds the inline emit description of a sub-query: output column
    /// names, canonical select items, and group keys.
    fn build_inline(
        &mut self,
        sub: &Query,
        sub_scope: &HashMap<String, usize>,
        outer_alias: &str,
        outer_temporal: Option<TemporalFilter>,
        sub_sink: usize,
    ) -> Result<Inline, CompileError> {
        let single = sub.select.len() == 1;
        let mut select = Vec::new();
        for (i, item) in sub.select.iter().enumerate() {
            let (canon_item, refs) = match item {
                SelectItem::Expr(e) => {
                    let (e, r) = self.canon_expr(e, sub_scope)?;
                    (SelectItem::Expr(e), r)
                }
                SelectItem::Agg(f, e) => {
                    let (e, r) = self.canon_expr(e, sub_scope)?;
                    (SelectItem::Agg(*f, e), r)
                }
            };
            let name = if single {
                outer_alias.to_owned()
            } else {
                let suffix = match item {
                    SelectItem::Expr(Expr::Field(f)) => {
                        f.rsplit('.').next().unwrap_or("c").to_owned()
                    }
                    _ => format!("c{i}"),
                };
                format!("{outer_alias}.{suffix}")
            };
            // Record demands: the sub sink consumes these fields.
            self.record_refs(&refs, sub_sink);
            select.push((name, canon_item));
        }
        let mut group_keys = Vec::new();
        for g in &sub.group_by {
            let (e, refs) = self.canon_expr(&Expr::Field(g.clone()), sub_scope)?;
            self.record_refs(&refs, sub_sink);
            let name = match &e {
                Expr::Field(f) => f.clone(),
                other => other.to_string(),
            };
            group_keys.push((name, e));
        }
        Ok(Inline {
            select,
            group_keys,
            outer_temporal,
        })
    }

    /// Records that `consumer` needs each referenced field, marking
    /// observation at the producer and flow through every boundary between
    /// producer and consumer.
    fn record_refs(&mut self, refs: &[Ref], consumer: usize) {
        for r in refs {
            // Observation demand at the producer (skip inline columns —
            // they are produced by the pack itself).
            let is_inline_col = self.nodes[r.producer]
                .inline
                .as_ref()
                .is_some_and(|i| i.select.iter().any(|(n, _)| n == &r.field));
            if !is_inline_col && !self.nodes[r.producer].observed.contains(&r.field) {
                self.nodes[r.producer].observed.push(r.field.clone());
            }
            // Flow demand along the path producer → consumer.
            let mut n = r.producer;
            while n != consumer {
                if !self.nodes[n].out_fields.contains(&r.field) {
                    self.nodes[n].out_fields.push(r.field.clone());
                }
                match self.nodes[n].succ {
                    Some(s) => n = s,
                    None => break,
                }
            }
        }
    }

    /// Returns the set of nodes whose tuples are visible at `n`.
    fn coverage(&self, n: usize) -> Vec<usize> {
        let mut out = vec![n];
        let mut stack = self.nodes[n].preds.clone();
        while let Some(p) = stack.pop() {
            if !out.contains(&p) {
                out.push(p);
                stack.extend(self.nodes[p].preds.iter().copied());
            }
        }
        out
    }

    /// Finishes the build: clause assignment, projection computation,
    /// aggregation pushdown, and stage materialization.
    fn finish(
        mut self,
        ast: &Query,
        scope: HashMap<String, usize>,
    ) -> Result<QueryPlan, CompileError> {
        let sink = 0usize;

        // Canonicalize emit clauses and record their demands at the sink.
        let mut sel_items: Vec<(SelectItem, Vec<Ref>)> = Vec::new();
        for item in &ast.select {
            let (canon, refs) = match item {
                SelectItem::Expr(e) => {
                    let (e, r) = self.canon_expr(e, &scope)?;
                    (SelectItem::Expr(e), r)
                }
                SelectItem::Agg(f, e) => {
                    let (e, r) = self.canon_expr(e, &scope)?;
                    (SelectItem::Agg(*f, e), r)
                }
            };
            self.record_refs(&refs, sink);
            sel_items.push((canon, refs));
        }
        let mut group_keys: Vec<(String, Expr, Vec<Ref>)> = Vec::new();
        for g in &ast.group_by {
            let (e, refs) = self.canon_expr(&Expr::Field(g.clone()), &scope)?;
            self.record_refs(&refs, sink);
            let name = match &e {
                Expr::Field(f) => f.clone(),
                other => other.to_string(),
            };
            group_keys.push((name, e, refs));
        }

        // Assign Where clauses: earliest covering stage when optimizing,
        // the sink otherwise. (Creation order is reverse causal order, so
        // "earliest" scans node indices descending.)
        let wheres = std::mem::take(&mut self.wheres);
        let mut where_assignment: Vec<(usize, Expr, Vec<Ref>)> = Vec::new();
        for (expr, refs) in wheres {
            let assigned = if self.optimize {
                let needed: Vec<usize> = refs.iter().map(|r| r.producer).collect();
                (0..self.nodes.len())
                    .rev()
                    .find(|&n| {
                        let cov = self.coverage(n);
                        needed.iter().all(|p| cov.contains(p))
                    })
                    .unwrap_or(sink)
            } else {
                sink
            };
            self.record_refs(&refs, assigned);
            where_assignment.push((assigned, expr, refs));
        }
        for (assigned, expr, _) in &where_assignment {
            self.nodes[*assigned].filters.push(expr.clone());
        }

        // The trigger predicate always evaluates at the emit stage (after
        // its filters), so its field demands land on the sink like a
        // non-pushed Where clause.
        let trigger = match &ast.trigger {
            Some(e) => {
                let (e, refs) = self.canon_expr(e, &scope)?;
                self.record_refs(&refs, sink);
                Some(e)
            }
            None => None,
        };

        // Build the emit output spec (keys = explicit group-by + non-agg
        // select items).
        let mut key_exprs: Vec<Expr> = Vec::new();
        let mut key_names: Vec<String> = Vec::new();
        let mut key_refs: Vec<Vec<Ref>> = Vec::new();
        for (name, e, refs) in &group_keys {
            if !key_exprs.contains(e) {
                key_exprs.push(e.clone());
                key_names.push(name.clone());
                key_refs.push(refs.clone());
            }
        }
        let has_aggs = sel_items
            .iter()
            .any(|(i, _)| matches!(i, SelectItem::Agg(..)));
        let mut columns = Vec::new();
        let mut aggs: Vec<(AggFunc, Expr)> = Vec::new();
        let mut agg_names: Vec<String> = Vec::new();
        let mut agg_refs: Vec<Vec<Ref>> = Vec::new();
        for (item, refs) in &sel_items {
            match item {
                SelectItem::Expr(e) => {
                    let pos = match key_exprs.iter().position(|k| k == e) {
                        Some(p) => p,
                        None => {
                            key_exprs.push(e.clone());
                            key_names.push(match e {
                                Expr::Field(f) => f.clone(),
                                other => other.to_string(),
                            });
                            key_refs.push(refs.clone());
                            key_exprs.len() - 1
                        }
                    };
                    columns.push(ColumnRef::Key(pos));
                }
                SelectItem::Agg(f, e) => {
                    let name = if matches!(e, Expr::Lit(Value::Null)) {
                        f.name().to_owned()
                    } else {
                        format!("{}({})", f.name(), e)
                    };
                    aggs.push((*f, e.clone()));
                    agg_names.push(name);
                    agg_refs.push(refs.clone());
                    columns.push(ColumnRef::Agg(aggs.len() - 1));
                }
            }
        }

        // Default pack sinks for every non-sink node.
        // (Set before aggregation pushdown may override the sink's feeder.)
        let mut sinks: Vec<Option<StageSink>> = vec![None; self.nodes.len()];
        // Causal order (reverse creation) so predecessors' packs exist
        // before successors read them in the unoptimized flow-through.
        for idx in (0..self.nodes.len()).rev() {
            if idx == sink {
                sinks[idx] = Some(StageSink::Emit);
                continue;
            }
            let node = &self.nodes[idx];
            let (mode, mut exprs, mut names): (PackMode, Vec<Expr>, Vec<String>) =
                if let Some(inline) = &node.inline {
                    let sub_has_aggs = inline
                        .select
                        .iter()
                        .any(|(_, i)| matches!(i, SelectItem::Agg(..)));
                    let mut exprs = Vec::new();
                    let mut names = Vec::new();
                    if sub_has_aggs {
                        // Grouped sub-query: pack keys then agg args.
                        let mut sub_aggs = Vec::new();
                        for (name, e) in &inline.group_keys {
                            names.push(name.clone());
                            exprs.push(e.clone());
                        }
                        for (name, item) in &inline.select {
                            match item {
                                SelectItem::Expr(e) => {
                                    if !exprs.contains(e) {
                                        names.push(name.clone());
                                        exprs.push(e.clone());
                                    }
                                }
                                SelectItem::Agg(..) => {
                                    let _ = name;
                                }
                            }
                        }
                        let key_len = exprs.len();
                        for (name, item) in &inline.select {
                            if let SelectItem::Agg(f, e) = item {
                                names.push(name.clone());
                                exprs.push(e.clone());
                                sub_aggs.push(*f);
                            }
                        }
                        (
                            PackMode::GroupAgg {
                                key_len,
                                aggs: sub_aggs,
                            },
                            exprs,
                            names,
                        )
                    } else {
                        for (name, item) in &inline.select {
                            if let SelectItem::Expr(e) = item {
                                names.push(name.clone());
                                exprs.push(e.clone());
                            }
                        }
                        let mode = if self.optimize {
                            temporal_to_mode(inline.outer_temporal)
                        } else {
                            PackMode::All
                        };
                        (mode, exprs, names)
                    }
                } else {
                    let mode = if self.optimize {
                        temporal_to_mode(node.temporal)
                    } else {
                        PackMode::All
                    };
                    (mode, Vec::new(), Vec::new())
                };
            // Append flow-through fields (everything demanded downstream
            // that is not already an output column).
            let flow: Vec<String> = if self.optimize {
                node.out_fields.clone()
            } else {
                // Unoptimized: everything available flows.
                let mut all: Vec<String> = Vec::new();
                for f in node.exports.iter().map(|e| format!("{}.{}", node.alias, e)) {
                    if !all.contains(&f) {
                        all.push(f);
                    }
                }
                for &p in &node.preds {
                    if let Some(StageSink::Pack { names, .. }) = &sinks[p] {
                        for f in names {
                            if !all.contains(f) {
                                all.push(f.clone());
                            }
                        }
                    }
                }
                all
            };
            for f in flow {
                if !names.contains(&f) {
                    // Grouped packs cannot carry raw extras after the agg
                    // columns; fold them in as additional group keys.
                    match mode {
                        PackMode::GroupAgg { .. } => {}
                        _ => {
                            names.push(f.clone());
                            exprs.push(Expr::Field(f));
                        }
                    }
                }
            }
            sinks[idx] = Some(StageSink::Pack { mode, exprs, names });
        }

        // Aggregation pushdown at the final boundary (optimized only).
        let mut out_aggs = aggs.clone();
        let mut out_keys = key_exprs.clone();
        if self.optimize && has_aggs && self.nodes[sink].preds.len() == 1 {
            let p = self.nodes[sink].preds[0];
            let cov = self.coverage(p);
            let all_aggs_pushable = agg_refs
                .iter()
                .all(|refs| refs.iter().all(|r| cov.contains(&r.producer)));
            let feeder_is_plain = matches!(
                sinks[p],
                Some(StageSink::Pack {
                    mode: PackMode::All,
                    ..
                })
            );
            if all_aggs_pushable && feeder_is_plain && !aggs.is_empty() {
                // Expressions pushed into the feeder evaluate against the
                // feeder's *advice schema*, not its pack output. When the
                // feeder is an inlined sub-query, sink-side references to
                // its output columns (e.g. a bare `lat` for a single-column
                // sub-query) name pack outputs that do not exist in that
                // schema — substitute each with its defining expression.
                let inline_cols: Vec<(String, Expr)> = match &self.nodes[p].inline {
                    Some(inline) => inline
                        .select
                        .iter()
                        .filter_map(|(name, item)| match item {
                            SelectItem::Expr(e) => Some((name.clone(), e.clone())),
                            SelectItem::Agg(..) => None,
                        })
                        .chain(inline.group_keys.iter().cloned())
                        .collect(),
                    None => Vec::new(),
                };
                let subst = |e: &Expr| substitute_fields(e, &inline_cols);
                // Pack keys: pushable group keys + any feeder-side field
                // still needed raw at the sink (filters / mixed keys).
                let mut pk_exprs: Vec<Expr> = Vec::new();
                let mut pk_names: Vec<String> = Vec::new();
                for (i, k) in key_exprs.iter().enumerate() {
                    let pushable = key_refs[i].iter().all(|r| cov.contains(&r.producer));
                    if pushable && !key_refs[i].is_empty() {
                        pk_names.push(key_names[i].clone());
                        pk_exprs.push(subst(k));
                    }
                }
                // Raw fields demanded downstream of p that are not already
                // key outputs: keep them as extra keys.
                let covered: Vec<&String> = pk_names.iter().collect();
                let extra: Vec<String> = self.nodes[p]
                    .out_fields
                    .iter()
                    .filter(|f| !covered.contains(f))
                    .filter(|f| {
                        // Needed raw unless referenced only by agg args.
                        let only_aggs = agg_refs
                            .iter()
                            .any(|refs| refs.iter().any(|r| &r.field == *f))
                            && !where_assignment.iter().any(|(at, _, refs)| {
                                *at == sink && refs.iter().any(|r| &r.field == *f)
                            })
                            && !key_refs.iter().enumerate().any(|(i, refs)| {
                                let pushed = key_refs[i].iter().all(|r| cov.contains(&r.producer));
                                !pushed && refs.iter().any(|r| &r.field == *f)
                            });
                        !only_aggs
                    })
                    .cloned()
                    .collect();
                for f in extra {
                    pk_names.push(f.clone());
                    pk_exprs.push(Expr::Field(f));
                }
                let key_len = pk_exprs.len();
                let mut funcs = Vec::new();
                let mut all_exprs = pk_exprs;
                let mut all_names = pk_names;
                for (i, (f, e)) in aggs.iter().enumerate() {
                    let col = format!("{}.$agg{i}", self.nodes[p].alias);
                    funcs.push(*f);
                    all_exprs.push(subst(e));
                    all_names.push(col.clone());
                    // The emit now combines the travelling state.
                    out_aggs[i] = (*f, Expr::Field(col));
                }
                // Rewrite pushed keys at the emit to reference the packed
                // column by name.
                for (i, k) in key_exprs.iter().enumerate() {
                    let pushed = key_refs[i].iter().all(|r| cov.contains(&r.producer))
                        && !key_refs[i].is_empty();
                    if pushed && !matches!(k, Expr::Field(_)) {
                        out_keys[i] = Expr::Field(key_names[i].clone());
                    }
                }
                sinks[p] = Some(StageSink::Pack {
                    mode: PackMode::GroupAgg {
                        key_len,
                        aggs: funcs,
                    },
                    exprs: all_exprs,
                    names: all_names,
                });
            }
        }

        let output = OutputSpec {
            key_exprs: out_keys,
            key_names,
            aggs: out_aggs,
            agg_names,
            columns,
            streaming: !has_aggs,
            ..OutputSpec::default()
        };

        // Materialize stages in causal order (reverse creation order).
        let order: Vec<usize> = (0..self.nodes.len()).rev().collect();
        let pos_of: HashMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(pos, &idx)| (idx, pos))
            .collect();
        let mut stages = Vec::new();
        for &idx in &order {
            let node = &self.nodes[idx];
            let observe: Vec<String> = if self.optimize {
                node.observed
                    .iter()
                    .map(|f| {
                        f.strip_prefix(&format!("{}.", node.alias))
                            .unwrap_or(f)
                            .to_owned()
                    })
                    .collect()
            } else {
                node.exports.clone()
            };
            // Validate observation demands against the tracepoint exports.
            for f in &observe {
                if !node.exports.contains(f) {
                    return Err(CompileError::UnknownExport {
                        tracepoint: node.tracepoints.first().cloned().unwrap_or_default(),
                        field: f.clone(),
                    });
                }
            }
            let unpacks: Vec<UnpackEdge> = node
                .preds
                .iter()
                .map(|&p| {
                    let names = match &sinks[p] {
                        Some(StageSink::Pack { names, .. }) => names.clone(),
                        _ => Vec::new(),
                    };
                    let post_filter = if self.optimize {
                        None
                    } else {
                        match &self.nodes[p].inline {
                            Some(inline) => inline.outer_temporal,
                            None => self.nodes[p].temporal,
                        }
                    };
                    UnpackEdge {
                        from_stage: pos_of[&p],
                        names,
                        post_filter,
                    }
                })
                .collect();
            stages.push(Stage {
                alias: node.alias.clone(),
                tracepoints: node.tracepoints.clone(),
                observe,
                unpacks,
                filters: node.filters.clone(),
                sink: sinks[idx].clone().expect("sink set"),
            });
        }
        Ok(QueryPlan {
            stages,
            output,
            trigger,
        })
    }
}

/// Replaces `Field(name)` references that match a `(name, expr)` binding
/// with the bound expression (used when pushing sink-side expressions into
/// an inlined feeder, whose output columns are expressions, not fields).
fn substitute_fields(e: &Expr, bindings: &[(String, Expr)]) -> Expr {
    match e {
        Expr::Field(f) => bindings
            .iter()
            .find(|(name, _)| name == f)
            .map(|(_, bound)| bound.clone())
            .unwrap_or_else(|| e.clone()),
        Expr::Lit(_) => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(substitute_fields(a, bindings))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_fields(a, bindings)),
            Box::new(substitute_fields(b, bindings)),
        ),
    }
}

fn temporal_to_mode(t: Option<TemporalFilter>) -> PackMode {
    match t {
        None => PackMode::All,
        Some(TemporalFilter::First(n)) => PackMode::First(n),
        Some(TemporalFilter::MostRecent(n)) => PackMode::Recent(n),
    }
}

/// Lowers a plan into advice programs.
fn lower(plan: QueryPlan, name: &str, text: &str, id: QueryId) -> CompiledQuery {
    // One shared spec for the emit advice, the compiled query, and (via
    // install) the agent buffers; warm the column-name cache now so report
    // ticks never rebuild it.
    let output = std::sync::Arc::new(plan.output.clone());
    output.warm();
    // Stage position → slot id. Stage `i` packs under slot `i`.
    let advice = plan
        .stages
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            let mut ops = Vec::new();
            ops.push(AdviceOp::Observe {
                alias: stage.alias.clone(),
                fields: stage.observe.clone(),
            });
            for u in &stage.unpacks {
                ops.push(AdviceOp::Unpack {
                    slot: CompiledQuery::slot_id(id, u.from_stage as u8),
                    schema: pivot_model::Schema::new(u.names.iter().map(String::as_str)),
                    post_filter: u.post_filter,
                });
            }
            for f in &stage.filters {
                ops.push(AdviceOp::Filter { pred: f.clone() });
            }
            match &stage.sink {
                StageSink::Pack { mode, exprs, names } => {
                    ops.push(AdviceOp::Pack {
                        slot: CompiledQuery::slot_id(id, i as u8),
                        mode: mode.clone(),
                        exprs: exprs.clone(),
                        names: names.clone(),
                    });
                }
                StageSink::Emit => {
                    if let Some(pred) = &plan.trigger {
                        // A constant-true predicate (the bare `Trigger`
                        // form) lowers to an unconditional trigger.
                        let pred = match pred {
                            Expr::Lit(Value::Bool(true)) => None,
                            other => Some(other.clone()),
                        };
                        ops.push(AdviceOp::Trigger { query: id, pred });
                    }
                    ops.push(AdviceOp::Emit {
                        query: id,
                        spec: output.clone(),
                    });
                }
            }
            AdviceProgram {
                tracepoints: stage.tracepoints.clone(),
                ops,
            }
        })
        .collect();
    CompiledQuery {
        id,
        name: name.to_owned(),
        text: text.to_owned(),
        advice,
        output,
    }
}
