//! Pretty-printing of query ASTs back to query-language text.
//!
//! `parse(q.to_string())` reproduces the same AST — property-tested in
//! `tests/roundtrip.rs`. Useful for logging installed queries, for the
//! frontend's query registry, and as a grammar cross-check.

use std::fmt;

use pivot_model::Value;

use crate::ast::{Query, SelectItem, Source, SourceKind, TemporalFilter};

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = match &self.kind {
            SourceKind::Tracepoints(names) => names.join(", "),
            SourceKind::QueryRef(name) => name.clone(),
        };
        match self.filter {
            None => write!(f, "{names}"),
            Some(TemporalFilter::First(1)) => write!(f, "First({names})"),
            Some(TemporalFilter::First(n)) => {
                write!(f, "FirstN({n}, {names})")
            }
            Some(TemporalFilter::MostRecent(1)) => {
                write!(f, "MostRecent({names})")
            }
            Some(TemporalFilter::MostRecent(n)) => {
                write!(f, "MostRecentN({n}, {names})")
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr(e) => write!(f, "{e}"),
            SelectItem::Agg(func, e) => {
                if matches!(e, pivot_model::Expr::Lit(Value::Null)) {
                    write!(f, "{}", func.name())
                } else {
                    write!(f, "{}({e})", func.name())
                }
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "From {} In {}", self.from.alias, self.from)?;
        for j in &self.joins {
            write!(
                f,
                " Join {} In {} On {} -> {}",
                j.source.alias, j.source, j.earlier, j.later
            )?;
        }
        for w in &self.wheres {
            write!(f, " Where {w}")?;
        }
        match &self.trigger {
            Some(pivot_model::Expr::Lit(Value::Bool(true))) => write!(f, " Trigger")?,
            Some(e) => write!(f, " Trigger {e}")?,
            None => {}
        }
        if !self.group_by.is_empty() {
            write!(f, " GroupBy {}", self.group_by.join(", "))?;
        }
        if !self.select.is_empty() {
            let items: Vec<String> = self.select.iter().map(|s| s.to_string()).collect();
            write!(f, " Select {}", items.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn q2_round_trips() {
        let text = "From incr In DataNodeMetrics.incrBytesRead \
                    Join cl In First(ClientProtocols) On cl -> incr \
                    GroupBy cl.procName \
                    Select cl.procName, SUM(incr.delta)";
        let q = parse(text).unwrap();
        let printed = q.to_string();
        assert_eq!(parse(&printed).unwrap(), q, "printed: {printed}");
    }

    #[test]
    fn temporal_and_union_round_trip() {
        for text in [
            "From e In A, B Select COUNT",
            "From e In MostRecentN(3, A) Select e.x",
            "From e In FirstN(2, A, B) Select MIN(e.x)",
            "From c In C Join a In A On a -> c Where a.x < 3 \
             Select c.x, AVERAGE(a.y)",
        ] {
            let q = parse(text).unwrap();
            assert_eq!(parse(&q.to_string()).unwrap(), q);
        }
    }
}
