//! Tokenizer for the query language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// An identifier, possibly dotted (`DataNodeMetrics.incrBytesRead`).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A double-quoted string literal.
    Str(String),
    /// A punctuation / operator token.
    Sym(Sym),
}

/// Operator and punctuation tokens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sym {
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==` (also accepts `=`)
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Sym(Sym::Comma));
                i += 1;
            }
            '(' => {
                tokens.push(Token::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Sym(Sym::RParen));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Sym(Sym::Plus));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Sym(Sym::Star));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Sym(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Sym(Sym::Percent));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Sym(Sym::Arrow));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Minus));
                    i += 1;
                }
            }
            // Unicode minus (the paper renders Q8 with '−').
            '\u{2212}' => {
                tokens.push(Token::Sym(Sym::Minus));
                i += '\u{2212}'.len_utf8();
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token::Sym(Sym::EqEq));
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(Sym::NotEq));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Bang));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(Sym::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Gt));
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::Sym(Sym::AndAnd));
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::Sym(Sym::OrOr));
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected `||`".into(),
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        pos: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                            && bytes
                                .get(i + 1)
                                .is_some_and(|b| (*b as char).is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad float literal: {e}"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad int literal: {e}"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' || c == '.' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_q2() {
        let toks = lex("From incr In DataNodeMetrics.incrBytesRead \
             Join cl In First(ClientProtocols) On cl -> incr \
             GroupBy cl.procName \
             Select cl.procName, SUM(incr.delta)")
        .unwrap();
        assert!(toks.contains(&Token::Sym(Sym::Arrow)));
        assert!(toks.contains(&Token::Ident("DataNodeMetrics.incrBytesRead".into())));
        assert!(toks.contains(&Token::Ident("SUM".into())));
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("a <= 1 && b != \"x\" || !c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Sym(Sym::Le),
                Token::Int(1),
                Token::Sym(Sym::AndAnd),
                Token::Ident("b".into()),
                Token::Sym(Sym::NotEq),
                Token::Str("x".into()),
                Token::Sym(Sym::OrOr),
                Token::Sym(Sym::Bang),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            lex("a -> b - c").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Sym(Sym::Arrow),
                Token::Ident("b".into()),
                Token::Sym(Sym::Minus),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn floats_and_comments() {
        assert_eq!(
            lex("1.5 # trailing comment\n 2").unwrap(),
            vec![Token::Float(1.5), Token::Int(2)]
        );
    }

    #[test]
    fn single_equals_is_equality() {
        assert_eq!(
            lex("a = b").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Sym(Sym::EqEq),
                Token::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a & b").is_err());
    }
}
