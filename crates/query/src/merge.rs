//! The grouped-aggregate merge shared by every tier that combines
//! partial results.
//!
//! Pivot Tracing pushes aggregation to the tracepoints (paper Table 3),
//! so what travels upward is partially aggregated groups; any tier may
//! fold two partials into one because every [`AggState`] merge is
//! associative and commutative (pinned by property tests in
//! `crates/model` and this crate). The frontend has always exploited
//! that to merge agent reports; the relay tier (`crates/relay`) exploits
//! it again to merge *in flight*, before reports ever reach the
//! frontend. Both call this one helper so the two tiers cannot drift.

use std::collections::HashMap;

use pivot_model::{AggState, GroupKey};

use crate::advice::OutputSpec;

/// Folds one partial group (`key`, `states`) into `map`.
///
/// A previously unseen key starts from `spec`'s initial aggregate states
/// (the identity of the merge), so merging a partial into an empty map
/// reproduces the partial exactly — the property that makes relay
/// windows transparent to the frontend's totals.
pub fn merge_grouped(
    map: &mut HashMap<GroupKey, Vec<AggState>>,
    spec: &OutputSpec,
    key: GroupKey,
    states: &[AggState],
) {
    let mine = map
        .entry(key)
        .or_insert_with(|| spec.aggs.iter().map(|(f, _)| f.init()).collect());
    for (m, s) in mine.iter_mut().zip(states) {
        m.merge(s);
    }
}
