//! Recursive-descent parser for the query language.

use std::fmt;

use pivot_model::{AggFunc, BinOp, Expr, UnOp, Value};

use crate::ast::{JoinClause, Query, SelectItem, Source, SourceKind, TemporalFilter};
use crate::lexer::{lex, LexError, Sym, Token};

/// A parse error.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: format!("at byte {}: {}", e.pos, e.message),
        }
    }
}

/// Parses a query text into an AST.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic problem.
///
/// # Examples
///
/// ```
/// let q = pivot_query::parse(
///     "From incr In DataNodeMetrics.incrBytesRead
///      GroupBy incr.host
///      Select incr.host, SUM(incr.delta)",
/// )
/// .unwrap();
/// assert_eq!(q.main_alias(), "incr");
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if !p.at_end() {
        return Err(p.err(format!("unexpected trailing `{}`", p.peek_str())));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_str(&self) -> String {
        self.peek().map_or("end of input".into(), |t| t.to_string())
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { message }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected `{kw}`, found `{}`", self.peek_str()))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn sym(&mut self, s: Sym) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Sym(t)) if *t == s => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected `{s:?}`, found `{}`", self.peek_str()))),
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found `{}`",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("From")?;
        let from = self.binding()?;
        let mut joins = Vec::new();
        let mut wheres = Vec::new();
        let mut group_by = Vec::new();
        let mut select = Vec::new();
        let mut trigger = None;
        loop {
            if self.at_keyword("Join") {
                self.pos += 1;
                let source = self.binding()?;
                self.keyword("On")?;
                let earlier = self.ident()?;
                self.sym(Sym::Arrow)?;
                let later = self.ident()?;
                joins.push(JoinClause {
                    source,
                    earlier,
                    later,
                });
            } else if self.at_keyword("Where") {
                self.pos += 1;
                wheres.push(self.expr()?);
            } else if self.at_keyword("GroupBy") {
                self.pos += 1;
                group_by.push(self.ident()?);
                while self.eat_sym(Sym::Comma) {
                    group_by.push(self.ident()?);
                }
            } else if self.at_keyword("Select") {
                self.pos += 1;
                select.push(self.select_item()?);
                while self.eat_sym(Sym::Comma) {
                    select.push(self.select_item()?);
                }
            } else if self.at_keyword("Trigger") {
                self.pos += 1;
                if trigger.is_some() {
                    return Err(self.err("duplicate `Trigger` clause".into()));
                }
                // A bare `Trigger` (followed by another clause keyword or
                // the end of the query) fires on any emitted tuple.
                let bare = self.at_end()
                    || ["Join", "Where", "GroupBy", "Select", "Trigger"]
                        .iter()
                        .any(|kw| self.at_keyword(kw));
                trigger = Some(if bare {
                    Expr::Lit(Value::Bool(true))
                } else {
                    self.expr()?
                });
            } else if self.at_end() {
                break;
            } else {
                return Err(self.err(format!(
                    "expected `Join`, `Where`, `GroupBy`, `Trigger`, or `Select`, found `{}`",
                    self.peek_str()
                )));
            }
        }
        if select.is_empty() {
            return Err(self.err("query has no `Select` clause".into()));
        }
        Ok(Query {
            from,
            joins,
            wheres,
            group_by,
            select,
            trigger,
        })
    }

    /// Parses `<alias> In <source-list>`.
    fn binding(&mut self) -> Result<Source, ParseError> {
        let alias = self.ident()?;
        self.keyword("In")?;
        self.source(alias)
    }

    /// Parses a source: tracepoint list, `First(...)`, `MostRecentN(n, ...)`,
    /// or a query reference (resolved later).
    fn source(&mut self, alias: String) -> Result<Source, ParseError> {
        let name = self.ident()?;
        let filter = match name.as_str() {
            f if f.eq_ignore_ascii_case("First") => Some(self.temporal_args(false)?),
            f if f.eq_ignore_ascii_case("FirstN") => Some(self.temporal_args_n(false)?),
            f if f.eq_ignore_ascii_case("MostRecent") => Some(self.temporal_args(true)?),
            f if f.eq_ignore_ascii_case("MostRecentN") => Some(self.temporal_args_n(true)?),
            _ => None,
        };
        match filter {
            Some((filter, names)) => Ok(Source {
                alias,
                kind: SourceKind::Tracepoints(names),
                filter: Some(filter),
            }),
            None => {
                let mut names = vec![name];
                while self.eat_sym(Sym::Comma) {
                    names.push(self.ident()?);
                }
                Ok(Source {
                    alias,
                    kind: SourceKind::Tracepoints(names),
                    filter: None,
                })
            }
        }
    }

    /// Parses `(Source[, Source…])` after `First` / `MostRecent`.
    fn temporal_args(&mut self, recent: bool) -> Result<(TemporalFilter, Vec<String>), ParseError> {
        self.sym(Sym::LParen)?;
        let mut names = vec![self.ident()?];
        while self.eat_sym(Sym::Comma) {
            names.push(self.ident()?);
        }
        self.sym(Sym::RParen)?;
        let f = if recent {
            TemporalFilter::MostRecent(1)
        } else {
            TemporalFilter::First(1)
        };
        Ok((f, names))
    }

    /// Parses `(n, Source[, Source…])` after `FirstN` / `MostRecentN`.
    fn temporal_args_n(
        &mut self,
        recent: bool,
    ) -> Result<(TemporalFilter, Vec<String>), ParseError> {
        self.sym(Sym::LParen)?;
        let n = match self.bump() {
            Some(Token::Int(v)) if v > 0 => v as usize,
            other => {
                return Err(self.err(format!(
                    "expected positive tuple count, found `{}`",
                    other.map_or("end of input".into(), |t| t.to_string())
                )))
            }
        };
        self.sym(Sym::Comma)?;
        let mut names = vec![self.ident()?];
        while self.eat_sym(Sym::Comma) {
            names.push(self.ident()?);
        }
        self.sym(Sym::RParen)?;
        let f = if recent {
            TemporalFilter::MostRecent(n)
        } else {
            TemporalFilter::First(n)
        };
        Ok((f, names))
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Bare COUNT, or AGG(expr), or a scalar expression.
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = AggFunc::parse(name) {
                let next_is_paren =
                    matches!(self.tokens.get(self.pos + 1), Some(Token::Sym(Sym::LParen)));
                if func == AggFunc::Count && !next_is_paren {
                    self.pos += 1;
                    return Ok(SelectItem::Agg(AggFunc::Count, Expr::Lit(Value::Null)));
                }
                if next_is_paren {
                    self.pos += 2;
                    // COUNT() with no argument.
                    if func == AggFunc::Count && self.eat_sym(Sym::RParen) {
                        return Ok(SelectItem::Agg(AggFunc::Count, Expr::Lit(Value::Null)));
                    }
                    let e = self.expr()?;
                    self.sym(Sym::RParen)?;
                    return Ok(SelectItem::Agg(func, e));
                }
            }
        }
        Ok(SelectItem::Expr(self.expr()?))
    }

    // -- expression parsing (precedence climbing) --

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_sym(Sym::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_sym(Sym::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Sym(Sym::EqEq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::NotEq)) => Some(BinOp::Ne),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr()?;
                Ok(Expr::bin(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => BinOp::Add,
                Some(Token::Sym(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => BinOp::Mul,
                Some(Token::Sym(Sym::Slash)) => BinOp::Div,
                Some(Token::Sym(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym(Sym::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat_sym(Sym::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Lit(Value::I64(v))),
            Some(Token::Float(v)) => Ok(Expr::Lit(Value::F64(v))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::str(s))),
            Some(Token::Ident(s)) => match s.as_str() {
                t if t.eq_ignore_ascii_case("true") => Ok(Expr::Lit(Value::Bool(true))),
                t if t.eq_ignore_ascii_case("false") => Ok(Expr::Lit(Value::Bool(false))),
                t if t.eq_ignore_ascii_case("null") => Ok(Expr::Lit(Value::Null)),
                _ => Ok(Expr::Field(s)),
            },
            Some(Token::Sym(Sym::LParen)) => {
                let e = self.expr()?;
                self.sym(Sym::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected expression, found `{}`",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse(
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host
             Select incr.host, SUM(incr.delta)",
        )
        .unwrap();
        assert_eq!(q.main_alias(), "incr");
        assert_eq!(q.group_by, vec!["incr.host"]);
        assert_eq!(q.select.len(), 2);
        assert!(matches!(
            q.select[1],
            SelectItem::Agg(AggFunc::Sum, Expr::Field(ref f)) if f == "incr.delta"
        ));
    }

    #[test]
    fn parses_q2_with_join() {
        let q = parse(
            "From incr In DataNodeMetrics.incrBytesRead
             Join cl In First(ClientProtocols) On cl -> incr
             GroupBy cl.procName
             Select cl.procName, SUM(incr.delta)",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        let j = &q.joins[0];
        assert_eq!(j.earlier, "cl");
        assert_eq!(j.later, "incr");
        assert_eq!(j.source.filter, Some(TemporalFilter::First(1)));
        assert_eq!(
            j.source.kind,
            SourceKind::Tracepoints(vec!["ClientProtocols".into()])
        );
    }

    #[test]
    fn parses_bare_count() {
        let q = parse(
            "From dnop In DN.DataTransferProtocol
             GroupBy dnop.host
             Select dnop.host, COUNT",
        )
        .unwrap();
        assert!(matches!(
            q.select[1],
            SelectItem::Agg(AggFunc::Count, Expr::Lit(Value::Null))
        ));
    }

    #[test]
    fn parses_q7_multi_join_with_where() {
        let q = parse(
            "From DNop In DN.DataTransferProtocol
             Join getloc In NN.GetBlockLocations On getloc -> DNop
             Join st In StressTest.DoNextOp On st -> getloc
             Where st.host != DNop.host
             GroupBy DNop.host, getloc.replicas
             Select DNop.host, getloc.replicas, COUNT",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[1].earlier, "st");
        assert_eq!(q.joins[1].later, "getloc");
        assert_eq!(q.wheres.len(), 1);
    }

    #[test]
    fn parses_q8_latency() {
        let q = parse(
            "From response In SendResponse
             Join request In MostRecent(ReceiveRequest) On request -> response
             Select response.time - request.time",
        )
        .unwrap();
        assert_eq!(
            q.joins[0].source.filter,
            Some(TemporalFilter::MostRecent(1))
        );
        assert!(matches!(
            q.select[0],
            SelectItem::Expr(Expr::Binary(BinOp::Sub, _, _))
        ));
    }

    #[test]
    fn parses_union_sources() {
        let q = parse("From e In DataRPCs, ControlRPCs Select COUNT").unwrap();
        assert_eq!(
            q.from.kind,
            SourceKind::Tracepoints(vec!["DataRPCs".into(), "ControlRPCs".into()])
        );
    }

    #[test]
    fn parses_firstn_and_mostrecentn() {
        let q = parse("From e In FirstN(3, RPCs) Select COUNT").unwrap();
        assert_eq!(q.from.filter, Some(TemporalFilter::First(3)));
        let q = parse("From e In MostRecentN(5, RPCs) Select COUNT").unwrap();
        assert_eq!(q.from.filter, Some(TemporalFilter::MostRecent(5)));
    }

    #[test]
    fn rejects_missing_select() {
        assert!(parse("From e In RPCs").is_err());
    }

    #[test]
    fn rejects_bad_on_clause() {
        assert!(parse("From a In X Join b In Y On b a Select COUNT").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("From e In RPCs Select COUNT garbage ->").is_err());
    }

    #[test]
    fn where_precedence() {
        let q = parse("From e In RPCs Where e.a < 1 && e.b == 2 || e.c != 3 Select COUNT").unwrap();
        // Or binds loosest.
        assert!(matches!(&q.wheres[0], Expr::Binary(BinOp::Or, _, _)));
    }
}
