//! Mid-level query plans.
//!
//! A [`QueryPlan`] is a chain (in general, a tree) of [`Stage`]s in causal
//! order. Every stage observes a tuple at its tracepoints, cross-joins it
//! with tuples unpacked from its predecessors' baggage slots, filters, and
//! then either **packs** the result forward (interior stages) or **emits**
//! it for global aggregation (the final stage — the query's `From` source).
//!
//! The optimizer's work (paper Table 3) is visible in the plan: which
//! `Where` clauses ran early, which fields each pack carries, and whether a
//! group-by aggregation was pushed into a pack mode.

use pivot_baggage::PackMode;
use pivot_model::Expr;

use crate::advice::OutputSpec;
use crate::ast::TemporalFilter;

/// An unpack edge from a predecessor stage.
#[derive(Clone, PartialEq, Debug)]
pub struct UnpackEdge {
    /// The predecessor's stage index (also its baggage slot).
    pub from_stage: usize,
    /// Column names of the packed tuples.
    pub names: Vec<String>,
    /// Temporal filter applied after unpacking (unoptimized plans only —
    /// optimized plans push it into the pack mode).
    pub post_filter: Option<TemporalFilter>,
}

/// What a stage does with its joined tuples.
#[derive(Clone, PartialEq, Debug)]
pub enum StageSink {
    /// Project through `exprs` and pack under this stage's slot.
    Pack {
        /// Retention / aggregation mode.
        mode: PackMode,
        /// Projection expressions.
        exprs: Vec<Expr>,
        /// Packed column names.
        names: Vec<String>,
    },
    /// Emit for global aggregation (final stage only).
    Emit,
}

/// One stage of a query plan.
#[derive(Clone, PartialEq, Debug)]
pub struct Stage {
    /// The source alias (sub-query aliases are prefixed with `name::`).
    pub alias: String,
    /// Tracepoints this stage's advice weaves into.
    pub tracepoints: Vec<String>,
    /// Export names observed (unqualified).
    pub observe: Vec<String>,
    /// Predecessor slots to unpack, in declaration order.
    pub unpacks: Vec<UnpackEdge>,
    /// `Where` predicates assigned to this stage by selection pushdown.
    pub filters: Vec<Expr>,
    /// Pack or emit.
    pub sink: StageSink,
}

/// A compiled query plan: stages in causal order plus the output shape.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryPlan {
    /// Stages in causal order; the last stage emits.
    pub stages: Vec<Stage>,
    /// Output shape of the emitted results.
    pub output: OutputSpec,
    /// Canonicalized `Trigger` predicate, evaluated at the emit stage
    /// after its filters; `None` when the query has no trigger clause.
    pub trigger: Option<Expr>,
}

impl QueryPlan {
    /// Returns the total number of packed columns across all boundaries —
    /// the optimizer's cost metric (paper §4: "the number of tuples packed
    /// during a request's execution").
    pub fn packed_columns(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match &s.sink {
                StageSink::Pack { names, .. } => names.len(),
                StageSink::Emit => 0,
            })
            .sum()
    }

    /// Returns `true` if any pack boundary carries a pushed-down
    /// aggregation.
    pub fn has_agg_pushdown(&self) -> bool {
        self.stages.iter().any(|s| {
            matches!(
                &s.sink,
                StageSink::Pack {
                    mode: PackMode::GroupAgg { .. },
                    ..
                }
            )
        })
    }
}
