//! Source spans for diagnostics.
//!
//! The lexer does not thread byte positions through tokens, so tools that
//! report on query text (the static verifier, `pivot-lint`) locate the
//! offending fragment by token-aware substring search instead. Queries are
//! a few hundred bytes, so the scan is negligible next to compilation.

/// A byte range within a query's source text, with 1-based line/column of
/// its start for human-readable reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column of `start`.
    pub col: usize,
}

impl Span {
    /// Builds a span for `[start, end)` within `text`, computing the
    /// line/column of `start`.
    pub fn at(text: &str, start: usize, end: usize) -> Span {
        let mut line = 1;
        let mut col = 1;
        for c in text[..start.min(text.len())].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Span {
            start,
            end,
            line,
            col,
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Finds the first occurrence of `needle` in `text` that is not embedded
/// inside a longer identifier path (so `op.size` does not match within
/// `DNop.size`). Returns `None` when `needle` is empty or absent.
pub fn locate(text: &str, needle: &str) -> Option<Span> {
    if needle.is_empty() {
        return None;
    }
    let mut from = 0;
    while let Some(pos) = text[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = !text[..start].chars().next_back().is_some_and(is_ident_char);
        let ok_after = !text[end..].chars().next().is_some_and(is_ident_char);
        if ok_before && ok_after {
            return Some(Span::at(text, start, end));
        }
        from = start + needle.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_respects_token_boundaries() {
        let text = "GroupBy DNop.size\nSelect op.size";
        let s = locate(text, "op.size").expect("found");
        assert_eq!(&text[s.start..s.end], "op.size");
        assert_eq!((s.line, s.col), (2, 8));
        assert!(locate(text, "missing").is_none());
    }

    #[test]
    fn line_and_column_are_one_based() {
        let s = locate("a.b\nc.d", "a.b").expect("found");
        assert_eq!((s.line, s.col), (1, 1));
    }
}
