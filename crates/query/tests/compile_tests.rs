//! Compiler tests: the paper's queries Q1–Q9 compile to the documented
//! advice shapes, and the Table 3 rewrites behave as specified.

use pivot_baggage::{PackMode, QueryId};
use pivot_model::AggFunc;
use pivot_query::advice::ColumnRef;
use pivot_query::compile::plan_query;
use pivot_query::plan::StageSink;
use pivot_query::{
    compile, parse, AdviceOp, CompileError, CompiledQuery, Options, Query, Resolver, TemporalFilter,
};

/// A resolver over a fixed tracepoint table plus registered queries.
struct TestResolver {
    queries: Vec<(String, Query)>,
}

impl TestResolver {
    fn new() -> TestResolver {
        TestResolver {
            queries: Vec::new(),
        }
    }

    fn with_query(mut self, name: &str, text: &str) -> TestResolver {
        self.queries.push((name.to_owned(), parse(text).unwrap()));
        self
    }
}

const DEFAULT_EXPORTS: [&str; 5] = ["host", "timestamp", "procid", "procname", "tracepoint"];

impl Resolver for TestResolver {
    fn tracepoint_exports(&self, name: &str) -> Option<Vec<String>> {
        let extra: &[&str] = match name {
            "DataNodeMetrics.incrBytesRead" => &["delta"],
            "ClientProtocols" => &["procName"],
            "DN.DataTransferProtocol" => &["op", "size"],
            "NN.GetBlockLocations" => &["src", "replicas"],
            "StressTest.DoNextOp" => &["op"],
            "SendResponse" => &["time"],
            "ReceiveRequest" => &["time"],
            "JobComplete" => &["id"],
            "RPCs" | "DataRPCs" | "ControlRPCs" => &["size", "user", "cost"],
            _ => return None,
        };
        Some(
            DEFAULT_EXPORTS
                .iter()
                .chain(extra.iter())
                .map(|s| (*s).to_owned())
                .collect(),
        )
    }

    fn query_ast(&self, name: &str) -> Option<Query> {
        self.queries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, q)| q.clone())
    }
}

fn compile_ok(text: &str) -> CompiledQuery {
    compile(
        text,
        "test",
        QueryId(1),
        &TestResolver::new(),
        Options::default(),
    )
    .unwrap()
}

const Q2: &str = "From incr In DataNodeMetrics.incrBytesRead
    Join cl In First(ClientProtocols) On cl -> incr
    GroupBy cl.procName
    Select cl.procName, SUM(incr.delta)";

#[test]
fn q1_compiles_to_single_emit_stage() {
    let cq = compile_ok(
        "From incr In DataNodeMetrics.incrBytesRead
         GroupBy incr.host
         Select incr.host, SUM(incr.delta)",
    );
    assert_eq!(cq.advice.len(), 1);
    let prog = &cq.advice[0];
    assert!(!prog.packs());
    assert!(prog.emits());
    // Observe only what the query references.
    match &prog.ops[0] {
        AdviceOp::Observe { fields, .. } => {
            let mut f = fields.clone();
            f.sort();
            assert_eq!(f, vec!["delta", "host"]);
        }
        op => panic!("expected Observe first, got {op:?}"),
    }
}

#[test]
fn q2_compiles_to_paper_advice_a1_a2() {
    // Paper §3: A1 = OBSERVE procName; PACK-FIRST procName.
    //           A2 = OBSERVE delta; UNPACK procName; EMIT procName, SUM(delta).
    let cq = compile_ok(Q2);
    assert_eq!(cq.advice.len(), 2);
    let a1 = &cq.advice[0];
    assert_eq!(a1.tracepoints, vec!["ClientProtocols"]);
    assert_eq!(a1.ops.len(), 2);
    match &a1.ops[0] {
        AdviceOp::Observe { fields, .. } => {
            assert_eq!(fields, &["procName"]);
        }
        op => panic!("unexpected {op:?}"),
    }
    match &a1.ops[1] {
        AdviceOp::Pack { mode, names, .. } => {
            assert_eq!(*mode, PackMode::First(1));
            assert_eq!(names, &["cl.procName"]);
        }
        op => panic!("unexpected {op:?}"),
    }
    let a2 = &cq.advice[1];
    assert_eq!(a2.tracepoints, vec!["DataNodeMetrics.incrBytesRead"]);
    assert!(matches!(&a2.ops[0], AdviceOp::Observe { fields, .. } if fields == &["delta"]));
    assert!(matches!(&a2.ops[1], AdviceOp::Unpack { .. }));
    match &a2.ops[2] {
        AdviceOp::Emit { spec, .. } => {
            assert_eq!(spec.key_names, vec!["cl.procName"]);
            assert_eq!(spec.aggs.len(), 1);
            assert_eq!(spec.aggs[0].0, AggFunc::Sum);
            assert_eq!(spec.column_names(), vec!["cl.procName", "SUM(incr.delta)"]);
        }
        op => panic!("unexpected {op:?}"),
    }
}

#[test]
fn q7_chain_compiles_in_causal_order() {
    let cq = compile_ok(
        "From DNop In DN.DataTransferProtocol
         Join getloc In NN.GetBlockLocations On getloc -> DNop
         Join st In StressTest.DoNextOp On st -> getloc
         Where st.host != DNop.host
         GroupBy DNop.host, getloc.replicas
         Select DNop.host, getloc.replicas, COUNT",
    );
    assert_eq!(cq.advice.len(), 3);
    assert_eq!(cq.advice[0].tracepoints, vec!["StressTest.DoNextOp"]);
    assert_eq!(cq.advice[1].tracepoints, vec!["NN.GetBlockLocations"]);
    assert_eq!(cq.advice[2].tracepoints, vec!["DN.DataTransferProtocol"]);
    // st.host must flow through the getloc pack to reach the Where at DNop.
    let getloc_pack = cq.advice[1]
        .ops
        .iter()
        .find_map(|op| match op {
            AdviceOp::Pack { names, .. } => Some(names.clone()),
            _ => None,
        })
        .expect("getloc packs");
    assert!(
        getloc_pack.iter().any(|n| n == "st.host"),
        "st.host missing from {getloc_pack:?}"
    );
    assert!(getloc_pack.iter().any(|n| n == "getloc.replicas"));
}

#[test]
fn q8_raw_latency_is_streaming() {
    let cq = compile_ok(
        "From response In SendResponse
         Join request In MostRecent(ReceiveRequest) On request -> response
         Select response.time - request.time",
    );
    assert!(cq.output.streaming);
    assert_eq!(cq.advice.len(), 2);
    match &cq.advice[0].ops[1] {
        AdviceOp::Pack { mode, .. } => {
            assert_eq!(*mode, PackMode::Recent(1));
        }
        op => panic!("unexpected {op:?}"),
    }
}

#[test]
fn q9_inlines_referenced_query_and_pushes_average() {
    let resolver = TestResolver::new().with_query(
        "Q8",
        "From response In SendResponse
         Join request In MostRecent(ReceiveRequest) On request -> response
         Select response.time - request.time",
    );
    let cq = compile(
        "From job In JobComplete
         Join latencyMeasurement In Q8 On latencyMeasurement -> job
         Select job.id, AVERAGE(latencyMeasurement)",
        "Q9",
        QueryId(4),
        &resolver,
        Options::default(),
    )
    .unwrap();
    // Three stages: ReceiveRequest, SendResponse (inlined Q8), JobComplete.
    assert_eq!(cq.advice.len(), 3);
    assert_eq!(cq.advice[0].tracepoints, vec!["ReceiveRequest"]);
    assert_eq!(cq.advice[1].tracepoints, vec!["SendResponse"]);
    assert_eq!(cq.advice[2].tracepoints, vec!["JobComplete"]);
    // The AVERAGE is pushed into the SendResponse pack: the baggage carries
    // one (sum, count) state instead of one tuple per request RPC.
    match cq.advice[1]
        .ops
        .iter()
        .find(|op| matches!(op, AdviceOp::Pack { .. }))
        .unwrap()
    {
        AdviceOp::Pack { mode, .. } => match mode {
            PackMode::GroupAgg { key_len, aggs } => {
                assert_eq!(*key_len, 0);
                assert_eq!(aggs, &vec![AggFunc::Average]);
            }
            other => panic!("expected GroupAgg, got {other:?}"),
        },
        _ => unreachable!(),
    }
}

#[test]
fn count_pushdown_over_single_join() {
    // Q4-style: COUNT and all keys from both sides; aggregation over the
    // packed side pushes the count into the baggage.
    let cq = compile_ok(
        "From getloc In NN.GetBlockLocations
         Join st In First(StressTest.DoNextOp) On st -> getloc
         GroupBy st.host, getloc.src
         Select st.host, getloc.src, COUNT",
    );
    // With a temporal filter the pack stays FIRST (already bounded).
    match &cq.advice[0].ops[1] {
        AdviceOp::Pack { mode, .. } => {
            assert_eq!(*mode, PackMode::First(1));
        }
        op => panic!("unexpected {op:?}"),
    }

    // Without the temporal filter the COUNT is pushed down as GroupAgg.
    let cq = compile_ok(
        "From getloc In NN.GetBlockLocations
         Join st In StressTest.DoNextOp On st -> getloc
         GroupBy st.host, getloc.src
         Select st.host, getloc.src, COUNT",
    );
    match &cq.advice[0].ops[1] {
        AdviceOp::Pack { mode, names, .. } => match mode {
            PackMode::GroupAgg { key_len, aggs } => {
                assert_eq!(*key_len, 1, "st.host is the pack-side key");
                assert_eq!(aggs, &vec![AggFunc::Count]);
                assert!(names[0].contains("st.host"));
            }
            other => panic!("expected GroupAgg, got {other:?}"),
        },
        op => panic!("unexpected {op:?}"),
    }
}

#[test]
fn mixed_side_aggregates_do_not_push() {
    // SUM over the emit side forbids pushing the pack-side COUNT (the
    // multiplicities would diverge).
    let cq = compile_ok(
        "From incr In DataNodeMetrics.incrBytesRead
         Join cl In ClientProtocols On cl -> incr
         GroupBy cl.procName
         Select cl.procName, SUM(incr.delta), COUNT",
    );
    match &cq.advice[0].ops[1] {
        AdviceOp::Pack { mode, .. } => assert_eq!(*mode, PackMode::All),
        op => panic!("unexpected {op:?}"),
    }
}

#[test]
fn unoptimized_packs_everything_and_defers_filters() {
    let ast = parse(
        "From DNop In DN.DataTransferProtocol
         Join st In StressTest.DoNextOp On st -> DNop
         Where st.host != DNop.host
         GroupBy DNop.host
         Select DNop.host, COUNT",
    )
    .unwrap();
    let resolver = TestResolver::new();
    let opt = plan_query(&ast, &resolver, Options::default()).unwrap();
    let unopt = plan_query(&ast, &resolver, Options::unoptimized()).unwrap();

    // Optimized: the st stage packs only st.host (needed raw by the Where
    // at the emit stage) plus the pushed-down COUNT state.
    let st_opt = &opt.stages[0];
    match &st_opt.sink {
        StageSink::Pack { names, mode, .. } => {
            assert_eq!(names, &["st.host", "st.$agg0"]);
            assert!(matches!(mode, PackMode::GroupAgg { key_len: 1, .. }));
        }
        s => panic!("unexpected {s:?}"),
    }

    // Unoptimized: the st stage packs all its exports.
    let st_unopt = &unopt.stages[0];
    match &st_unopt.sink {
        StageSink::Pack { names, mode, .. } => {
            assert!(names.len() >= 5, "only packed {names:?}");
            assert_eq!(*mode, PackMode::All);
        }
        s => panic!("unexpected {s:?}"),
    }
    assert!(unopt.packed_columns() > opt.packed_columns());
    // Filters all land at the emit stage either way here, since the Where
    // spans both sides.
    assert_eq!(opt.stages[1].filters.len(), 1);
    assert_eq!(unopt.stages[1].filters.len(), 1);
}

#[test]
fn where_pushdown_runs_at_earliest_covering_stage() {
    let cq = compile_ok(
        "From DNop In DN.DataTransferProtocol
         Join st In StressTest.DoNextOp On st -> DNop
         Where st.op == \"read\"
         GroupBy DNop.host
         Select DNop.host, COUNT",
    );
    // The Where only references st → evaluated at the st stage, pre-pack.
    let st = &cq.advice[0];
    assert!(st
        .ops
        .iter()
        .any(|op| matches!(op, AdviceOp::Filter { .. })));
    let emit = &cq.advice[1];
    assert!(!emit
        .ops
        .iter()
        .any(|op| matches!(op, AdviceOp::Filter { .. })));
}

#[test]
fn union_sources_weave_everywhere() {
    let cq = compile_ok("From e In DataRPCs, ControlRPCs Select COUNT");
    assert_eq!(cq.advice.len(), 1);
    assert_eq!(cq.advice[0].tracepoints.len(), 2);
}

#[test]
fn select_columns_follow_select_order() {
    let cq = compile_ok("From e In RPCs GroupBy e.user Select SUM(e.cost), e.user");
    assert_eq!(
        cq.output.columns,
        vec![ColumnRef::Agg(0), ColumnRef::Key(0)]
    );
}

#[test]
fn hidden_group_keys_group_but_do_not_display() {
    let cq = compile_ok("From e In RPCs GroupBy e.user Select SUM(e.cost)");
    assert_eq!(cq.output.key_exprs.len(), 1);
    assert_eq!(cq.output.columns, vec![ColumnRef::Agg(0)]);
}

#[test]
fn errors_are_reported() {
    let r = TestResolver::new();
    let must_fail =
        |text: &str| compile(text, "t", QueryId(9), &r, Options::default()).unwrap_err();
    assert!(matches!(
        must_fail("From e In NoSuchTracepoint Select COUNT"),
        CompileError::UnknownTracepoint(_)
    ));
    assert!(matches!(
        must_fail("From e In RPCs Select f.size"),
        CompileError::UnknownField(_)
    ));
    assert!(matches!(
        must_fail("From e In RPCs Select e.bogus"),
        CompileError::UnknownField(_) | CompileError::UnknownExport { .. }
    ));
    assert!(matches!(
        must_fail("From e In RPCs Join e In RPCs On e -> e Select COUNT"),
        CompileError::DuplicateAlias(_) | CompileError::BadJoin(_)
    ));
    assert!(matches!(
        must_fail("From e In RPCs Join x In RPCs On e -> x Select COUNT"),
        CompileError::BadJoin(_)
    ));
    assert!(matches!(
        must_fail("From e In RPCs Select"),
        CompileError::Parse(_)
    ));
}

#[test]
fn temporal_filters_become_pack_modes() {
    for (text, want) in [
        ("First(RPCs)", PackMode::First(1)),
        ("FirstN(3, RPCs)", PackMode::First(3)),
        ("MostRecent(RPCs)", PackMode::Recent(1)),
        ("MostRecentN(4, RPCs)", PackMode::Recent(4)),
    ] {
        let cq = compile_ok(&format!(
            "From e In DataRPCs
             Join f In {text} On f -> e
             Select e.user, f.user"
        ));
        match &cq.advice[0].ops[1] {
            AdviceOp::Pack { mode, .. } => assert_eq!(mode, &want),
            op => panic!("unexpected {op:?}"),
        }
    }
}

#[test]
fn unoptimized_applies_temporal_filter_at_unpack() {
    let ast = parse(
        "From e In DataRPCs
         Join f In MostRecent(RPCs) On f -> e
         Select e.user, f.user",
    )
    .unwrap();
    let plan = plan_query(&ast, &TestResolver::new(), Options::unoptimized()).unwrap();
    let emit = plan.stages.last().unwrap();
    assert_eq!(
        emit.unpacks[0].post_filter,
        Some(TemporalFilter::MostRecent(1))
    );
    match &plan.stages[0].sink {
        StageSink::Pack { mode, .. } => assert_eq!(*mode, PackMode::All),
        s => panic!("unexpected {s:?}"),
    }
}

#[test]
fn slot_ids_are_disjoint_per_query() {
    let a = CompiledQuery::slot_id(QueryId(1), 0);
    let b = CompiledQuery::slot_id(QueryId(1), 1);
    let c = CompiledQuery::slot_id(QueryId(2), 0);
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_ne!(QueryId(1), a);
}
