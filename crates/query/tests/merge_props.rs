//! Property tests pinning the algebra the whole result path leans on:
//! the grouped-aggregate merge ([`pivot_query::merge_grouped`], shared
//! by the frontend and the relay tier) is associative and commutative
//! for every aggregate function — `COUNT`, `SUM`, `MIN`, `MAX`,
//! `AVERAGE` — across group-key unions, and each function's `init()`
//! state is the merge identity (what makes the relay's spec-less
//! fallback and vacant-insert path sound).
//!
//! Numeric values are kept dyadic (small integers, and floats offset by
//! exactly 0.5) so float addition is exact and the float/integer
//! promotion in `SUM` never produces a cross-type tie in `MIN`/`MAX`;
//! the properties then hold *exactly*, not approximately.

use std::collections::{BTreeSet, HashMap};

use pivot_baggage::QueryId;
use pivot_model::{AggState, GroupKey, Tuple};
use pivot_query::{compile, merge_grouped, Options, OutputSpec, Query, Resolver};
use proptest::prelude::*;

use pivot_model::Value as V;

const QUERY: &str = "From r In RPCs GroupBy r.user \
     Select r.user, COUNT, SUM(r.size), MIN(r.size), MAX(r.size), AVERAGE(r.cost)";

struct RpcResolver;

impl Resolver for RpcResolver {
    fn tracepoint_exports(&self, name: &str) -> Option<Vec<String>> {
        (name == "RPCs").then(|| {
            [
                "host",
                "timestamp",
                "procid",
                "procname",
                "tracepoint",
                "size",
                "user",
                "cost",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
        })
    }

    fn query_ast(&self, _name: &str) -> Option<Query> {
        None
    }
}

fn spec() -> std::sync::Arc<OutputSpec> {
    let cq = compile(QUERY, "props", QueryId(1), &RpcResolver, Options::default())
        .expect("the all-aggregates query compiles");
    cq.output
}

type Partial = HashMap<GroupKey, Vec<AggState>>;

fn key(g: usize) -> GroupKey {
    GroupKey(Tuple::new([V::str(format!("u{g}"))]))
}

/// One observed value: small integers, floats offset by 0.5 (dyadic, so
/// sums are exact and cross-type ties are impossible), and Nulls to
/// exercise the MIN/MAX identity element.
fn value() -> impl Strategy<Value = V> {
    prop_oneof![
        (-8i64..8).prop_map(V::I64),
        (-8i64..8).prop_map(|k| V::F64(k as f64 + 0.5)),
        Just(V::Null),
    ]
}

/// A partial result as a tier below would build it: observations folded
/// into per-group aggregate states initialised from the spec.
fn partial() -> impl Strategy<Value = Vec<(usize, V)>> {
    prop::collection::vec((0usize..4, value()), 0..24)
}

fn build(spec: &OutputSpec, obs: &[(usize, V)]) -> Partial {
    let mut map = Partial::new();
    for (g, v) in obs {
        let states = map
            .entry(key(*g))
            .or_insert_with(|| spec.aggs.iter().map(|(f, _)| f.init()).collect());
        for s in states.iter_mut() {
            s.update(v);
        }
    }
    map
}

/// Folds `from` into `into` through the shared merge, in a deterministic
/// group order (the merge itself must not care, and the commutativity
/// property checks exactly that at the partial level).
fn fold(spec: &OutputSpec, into: &mut Partial, from: &Partial) {
    let mut entries: Vec<_> = from.iter().collect();
    entries.sort_by_key(|(k, _)| format!("{k:?}"));
    for (k, states) in entries {
        merge_grouped(into, spec, k.clone(), states);
    }
}

fn merged(spec: &OutputSpec, parts: &[&Partial]) -> Partial {
    let mut out = Partial::new();
    for p in parts {
        fold(spec, &mut out, p);
    }
    out
}

proptest! {
    /// a ⊕ b == b ⊕ a, over every aggregate function at once and
    /// whatever mix of shared and disjoint group keys the generator
    /// produced.
    #[test]
    fn grouped_merge_is_commutative((oa, ob) in (partial(), partial())) {
        let spec = spec();
        let (a, b) = (build(&spec, &oa), build(&spec, &ob));
        prop_assert_eq!(merged(&spec, &[&a, &b]), merged(&spec, &[&b, &a]));
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): the relay tier may fold partials in
    /// any tree shape without changing the frontend's totals.
    #[test]
    fn grouped_merge_is_associative((oa, ob, oc) in (partial(), partial(), partial())) {
        let spec = spec();
        let (a, b, c) = (build(&spec, &oa), build(&spec, &ob), build(&spec, &oc));
        let left = merged(&spec, &[&merged(&spec, &[&a, &b]), &c]);
        let right = merged(&spec, &[&a, &merged(&spec, &[&b, &c])]);
        prop_assert_eq!(left, right);
    }

    /// Merging a partial into an empty map reproduces it exactly (the
    /// vacant-insert path), and merging `init()` into any state — from
    /// either side — is a no-op: `init()` is the merge identity for
    /// every aggregate function.
    #[test]
    fn init_is_the_merge_identity(obs in partial()) {
        let spec = spec();
        let a = build(&spec, &obs);
        prop_assert_eq!(&merged(&spec, &[&a]), &a);
        for states in a.values() {
            for (s, (f, _)) in states.iter().zip(&spec.aggs) {
                let mut left = s.clone();
                left.merge(&f.init());
                prop_assert_eq!(&left, s, "s ⊕ init == s for {:?}", f);
                let mut right = f.init();
                right.merge(s);
                prop_assert_eq!(&right, s, "init ⊕ s == s for {:?}", f);
            }
        }
    }

    /// The merged key set is exactly the union of the inputs' key sets:
    /// fan-in never invents or loses a group.
    #[test]
    fn merged_keys_are_the_union((oa, ob) in (partial(), partial())) {
        let spec = spec();
        let (a, b) = (build(&spec, &oa), build(&spec, &ob));
        let union: BTreeSet<String> = a
            .keys()
            .chain(b.keys())
            .map(|k| format!("{k:?}"))
            .collect();
        let got: BTreeSet<String> = merged(&spec, &[&a, &b])
            .keys()
            .map(|k| format!("{k:?}"))
            .collect();
        prop_assert_eq!(got, union);
    }
}
