//! Property test: pretty-printing a random query AST and re-parsing it
//! reproduces the same AST — the printer and the grammar agree.

use pivot_model::{AggFunc, BinOp, Expr, Value};
use pivot_query::{parse, JoinClause, Query, SelectItem, Source, SourceKind, TemporalFilter};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_map(|s| s)
}

fn tracepoint() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,5}(\\.[a-z][a-zA-Z0-9]{0,5})?".prop_filter(
        "temporal-filter names are reserved in source position",
        |s| {
            !["first", "firstn", "mostrecent", "mostrecentn"]
                .contains(&s.to_ascii_lowercase().as_str())
        },
    )
}

fn temporal() -> impl Strategy<Value = Option<TemporalFilter>> {
    prop_oneof![
        Just(None),
        (1usize..5).prop_map(|n| Some(TemporalFilter::First(n))),
        (1usize..5).prop_map(|n| Some(TemporalFilter::MostRecent(n))),
    ]
}

fn leaf_expr(alias: String) -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident().prop_map(move |f| Expr::Field(format!("{alias}.{f}"))),
        // Non-negative only: `-5` re-parses as unary negation of `5`,
        // which is semantically equal but structurally distinct.
        (0i64..100).prop_map(|v| Expr::Lit(Value::I64(v))),
        "[a-z]{0,5}".prop_map(|s| Expr::Lit(Value::str(s))),
    ]
}

fn expr(alias: String) -> impl Strategy<Value = Expr> {
    let leaf = leaf_expr(alias);
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Lt),
                Just(BinOp::Eq),
                Just(BinOp::And),
                Just(BinOp::Or),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::bin(op, l, r))
    })
}

fn select_item(alias: String) -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        expr(alias.clone()).prop_map(SelectItem::Expr),
        (
            prop_oneof![
                Just(AggFunc::Count),
                Just(AggFunc::Sum),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
                Just(AggFunc::Average),
            ],
            expr(alias)
        )
            .prop_map(|(f, e)| SelectItem::Agg(f, e)),
        Just(SelectItem::Agg(AggFunc::Count, Expr::Lit(Value::Null))),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        ident(),
        prop::collection::vec(tracepoint(), 1..3),
        temporal(),
        prop::collection::vec((ident(), tracepoint(), temporal()), 0..3),
        prop::collection::vec(select_item("a0".to_owned()), 1..4),
        prop::collection::vec(ident(), 0..3),
        prop_oneof![
            Just(None),
            Just(Some(Expr::Lit(Value::Bool(true)))),
            expr("a0".to_owned()).prop_map(Some),
        ],
    )
        .prop_map(|(from_alias, tps, tf, joins, select, group_by, trigger)| {
            // Aliases must be unique; qualify group-by fields to the From
            // alias so they parse as identifiers.
            let from_alias = format!("a0{from_alias}");
            let joins: Vec<JoinClause> = joins
                .into_iter()
                .enumerate()
                .map(|(i, (alias, tp, tf))| {
                    let alias = format!("j{i}{alias}");
                    JoinClause {
                        source: Source {
                            alias: alias.clone(),
                            kind: SourceKind::Tracepoints(vec![tp]),
                            filter: tf,
                        },
                        earlier: alias,
                        later: from_alias.clone(),
                    }
                })
                .collect();
            let group_by: Vec<String> = group_by
                .into_iter()
                .map(|g| format!("{from_alias}.{g}"))
                .collect();
            // Rewrite select exprs to the real from-alias.
            let select = select
                .into_iter()
                .map(|item| match item {
                    SelectItem::Expr(e) => SelectItem::Expr(
                        e.map_fields(&|f| f.replacen("a0.", &format!("{from_alias}."), 1)),
                    ),
                    SelectItem::Agg(f, e) => SelectItem::Agg(
                        f,
                        e.map_fields(&|x| x.replacen("a0.", &format!("{from_alias}."), 1)),
                    ),
                })
                .collect();
            let trigger =
                trigger.map(|e| e.map_fields(&|f| f.replacen("a0.", &format!("{from_alias}."), 1)));
            Query {
                from: Source {
                    alias: from_alias,
                    kind: SourceKind::Tracepoints(tps),
                    filter: tf,
                },
                joins,
                wheres: Vec::new(),
                group_by,
                select,
                trigger,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse reproduces the AST.
    #[test]
    fn printed_queries_reparse(q in query()) {
        let text = q.to_string();
        let back = parse(&text);
        prop_assert!(back.is_ok(), "failed to reparse: {text}\n{back:?}");
        prop_assert_eq!(back.unwrap(), q, "text: {}", text);
    }

    /// Where clauses round trip too (generated separately because a
    /// `Where` must evaluate to a boolean to be useful, but any expression
    /// must at least re-parse).
    #[test]
    fn printed_wheres_reparse(e in expr("x".to_owned())) {
        let q = Query {
            from: Source {
                alias: "x".into(),
                kind: SourceKind::Tracepoints(vec!["T".into()]),
                filter: None,
            },
            joins: vec![],
            wheres: vec![e],
            group_by: vec![],
            select: vec![SelectItem::Agg(
                AggFunc::Count,
                Expr::Lit(Value::Null),
            )],
            trigger: None,
        };
        let text = q.to_string();
        let back = parse(&text);
        prop_assert!(back.is_ok(), "failed to reparse: {text}\n{back:?}");
        prop_assert_eq!(back.unwrap(), q, "text: {}", text);
    }
}
