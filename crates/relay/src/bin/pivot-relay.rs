//! The standalone relay process.
//!
//! ```text
//! pivot-relay --upstream 127.0.0.1:7000 [--listen 127.0.0.1:0]
//!             [--host rack-0] [--procid 1] [--flush-ms 200]
//! ```
//!
//! Starts a [`pivot_relay::live::RelayServer`] between downstream agents
//! (which connect to the printed listen address exactly as they would to
//! a frontend) and the upstream bus at `--upstream`, then runs until the
//! upstream link closes orderly or is lost for good.

use std::process::exit;
use std::time::Duration;

use pivot_core::ProcessInfo;
use pivot_live::bus::ConnStatus;
use pivot_relay::live::RelayServer;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(upstream) = flag(&args, "--upstream") else {
        eprintln!(
            "usage: pivot-relay --upstream HOST:PORT [--listen HOST:PORT] \
             [--host NAME] [--procid N] [--flush-ms MS]"
        );
        exit(2);
    };
    let upstream = match upstream.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pivot-relay: bad --upstream address {upstream:?}: {e}");
            exit(2);
        }
    };
    let listen = flag(&args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let host = flag(&args, "--host").unwrap_or_else(|| "relay".to_owned());
    let procid = flag(&args, "--procid")
        .map(|s| s.parse().expect("--procid takes a number"))
        .unwrap_or(0);
    let flush_ms = flag(&args, "--flush-ms")
        .map(|s| s.parse().expect("--flush-ms takes a number"))
        .unwrap_or(200);

    let info = ProcessInfo {
        host,
        procid,
        procname: "pivot-relay".to_owned(),
    };
    let relay = match RelayServer::bind(
        &listen,
        upstream,
        info,
        Duration::from_millis(flush_ms),
        pivot_live::ReconnectPolicy::new(procid),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pivot-relay: failed to start: {e}");
            exit(1);
        }
    };
    // The line scripts parse to learn the ephemeral downstream port.
    println!("pivot-relay listening on {}", relay.addr());

    loop {
        std::thread::sleep(Duration::from_millis(100));
        match relay.status() {
            ConnStatus::Closed => {
                relay.shutdown();
                return;
            }
            ConnStatus::Lost => {
                let s = relay.stats();
                eprintln!(
                    "pivot-relay: upstream lost for good \
                     (in={} out={} tuples_in={} tuples_out={})",
                    s.reports_in, s.reports_out, s.tuples_in, s.tuples_out
                );
                relay.shutdown();
                exit(1);
            }
            _ => {}
        }
    }
}
