//! Hierarchical fan-in: the collector/relay tier.
//!
//! The paper's deployment model has every agent report straight to the
//! frontend — a star topology whose frontend-side merge and frame rate
//! scale linearly with the number of processes. This crate inserts an
//! intermediate tier on the existing [`Bus`] trait: a [`Relay`] accepts
//! any number of downstream agent (or relay) connections and maintains
//! one upstream connection, so a tree of relays turns `N` inbound report
//! streams into one.
//!
//! The relay is not a dumb forwarder. Grouped aggregates are partially
//! merged **in flight** per (query, source) window using the same
//! [`pivot_query::merge_grouped`] fold the frontend applies — sound
//! because every [`pivot_model::AggState`] merge is associative and
//! commutative (pinned by property tests) — so a flush forwards one
//! re-originated report per query instead of one per downstream source.
//! Raw (streaming) rows are coalesced into batched frames without
//! merging.
//!
//! # Envelope re-origination
//!
//! Loss accounting must keep balancing through the tree: the frontend's
//! identity `emitted == delivered + governor_shed + dropped` (per
//! source), and the harness-level
//! `emitted == delivered + dropped + crash_lost + governor_shed`. A
//! relay therefore *re-originates* the envelope: upstream reports carry
//! the relay's own (host, procid, incarnation, seq) identity, and its
//! cumulative counters are sums of **baseline-relative deltas** over the
//! downstream sources it has heard from:
//!
//! - On first contact with a source (first report `r` accepted), the
//!   relay baselines `emitted_cum = r.emitted_cum - r.tuples`,
//!   `shed_cum = r.shed_cum`: the window of emissions this relay
//!   incarnation is answerable for starts at exactly the content of `r`.
//! - Upstream `emitted_cum` is `Σ (latest_emitted - baseline_emitted)`,
//!   `shed_cum` is `Σ (latest_shed - baseline_shed)`; `tuples` is what
//!   this flush actually forwards. The difference the frontend computes
//!   (`emitted - delivered - shed`) is then precisely the tuples known
//!   lost *below* this relay plus whatever is still sitting in the
//!   relay's open window — and the window term vanishes once the relay
//!   flushes, so a settled system accounts downstream loss exactly.
//! - Reports from seqs *before* a source's baseline (in-flight frames
//!   overtaken by a relay restart) are refused and tallied in
//!   [`RelayStats::tuples_stale`]: their tuples left every ledger, and
//!   hiding that would fake the books. Duplicate frames at-or-after the
//!   baseline are suppressed exactly like the frontend suppresses them.
//!
//! A relay crash loses its open window; [`Relay::restart`] surfaces that
//! as a [`CrashResidue`] the embedding folds into its `crash_lost`
//! ground truth, takes a fresh incarnation (so the frontend never
//! confuses the new stream with the old), and re-baselines every source
//! on next contact.
//!
//! The live (TCP) side of this tier — `pivot-relay`, the standalone
//! relay process — lives in [`live`], built on the same [`RelayCore`].

pub mod live;

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pivot_baggage::QueryId;
use pivot_core::{Bus, Command, ProcessInfo, Report, ReportRows, RetroReport, Throttled};
use pivot_model::{colblock, AggState, EncodedBlock, GroupKey, Tuple};
use pivot_query::{merge_grouped, OutputSpec};

/// Incarnation numbers for relays, distinct per restart within a
/// process. Relays have their own counter (agents draw from
/// `pivot-core`'s); uniqueness only matters per (host, procid) identity,
/// which never aliases an agent's.
static NEXT_INCARNATION: AtomicU64 = AtomicU64::new(1);

/// Counters describing one relay's fan-in work, cumulative across
/// restarts of the same [`RelayCore`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RelayStats {
    /// Downstream reports accepted into merge windows.
    pub reports_in: u64,
    /// Upstream reports emitted (the fan-in ratio is `in / out`).
    pub reports_out: u64,
    /// Tuples accepted from downstream.
    pub tuples_in: u64,
    /// Tuples forwarded upstream.
    pub tuples_out: u64,
    /// Downstream reports suppressed as duplicates (same source, same
    /// seq, at or after the source's baseline).
    pub reports_duplicate: u64,
    /// Downstream reports refused as stale: their seq precedes the
    /// source's baseline, so this relay incarnation cannot account them.
    pub reports_stale: u64,
    /// Tuples carried by first-sighting stale reports — tuples that left
    /// every ledger (the transport did not drop them, but no tier will
    /// ever deliver or account them). Embeddings fold this into their
    /// transport-drop tally.
    pub tuples_stale: u64,
    /// Retroactive-flush reports accepted from downstream. Retro frames
    /// pass through *verbatim* — the originating agent's identity and
    /// ring seq survive so the frontend can dedup end to end — so there
    /// is no retro re-origination, only queueing.
    pub retro_in: u64,
    /// Retroactive-flush reports forwarded upstream.
    pub retro_out: u64,
    /// Retroactive-flush reports suppressed as duplicates of a frame
    /// this relay already queued (same originating agent identity, same
    /// ring seq). Without this a transport duplicate below the relay
    /// could fan out past the hop — and if one copy then died in a
    /// crash residue while the other delivered, the same events would
    /// sit on two ledgers at once.
    pub retro_duplicate: u64,
    /// Buffered events carried by retro reports shed from the bounded
    /// pass-through queue during an upstream outage (ground truth for
    /// the embedding's retro loss books).
    pub retro_events_shed: u64,
}

/// Cap on events queued in a relay's retro pass-through queue; oldest
/// frames shed first under pressure (same bounded-outage discipline as
/// the agent's pending queue).
pub const RETRO_QUEUE_CAP: u64 = 4096;

/// What a relay crash destroys: the tuples absorbed into the open merge
/// window but never flushed upstream. The embedding folds this into its
/// `crash_lost` ground truth, exactly like an agent crash's unflushed
/// buffer.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CrashResidue {
    /// Tuples lost with the open window.
    pub window_tuples: u64,
    /// Buffered events in queued retro reports lost with the crash.
    pub retro_events: u64,
}

/// Per-downstream-source (host, procid, incarnation) tracking.
struct SourceState {
    /// The seq this relay incarnation first accepted from the source;
    /// anything earlier is stale (see [`RelayStats::tuples_stale`]).
    baseline_seq: u64,
    /// Every seq in `baseline_seq..next_contig` has been received.
    next_contig: u64,
    /// Received seqs at or above `next_contig` (out-of-order arrivals).
    pending: BTreeSet<u64>,
    /// Stale seqs already counted, so a duplicated stale frame is not
    /// double-tallied. Bounded by the frames in flight at a restart.
    stale_seen: BTreeSet<u64>,
    /// Max-latched latest cumulative counters. Initialized to the
    /// source's *baseline*: the counters as of the first accepted report,
    /// with emitted excluding that report's own tuples (they are ours to
    /// account). Deltas against these roll into the window's running
    /// sums, so the baselines themselves need no separate storage.
    emitted_latest: u64,
    shed_latest: u64,
    truncated_latest: u64,
}

/// One query's in-flight merge window plus its upstream stream state.
struct QueryWindow {
    /// Output shape, learned from the `Install` command passing through.
    spec: Option<Arc<OutputSpec>>,
    /// The partially merged groups of the open window.
    groups: HashMap<GroupKey, Vec<AggState>>,
    /// Coalesced raw rows of streaming queries.
    raw: Vec<Tuple>,
    /// Coalesced pre-encoded row blocks of streaming queries, forwarded
    /// at the encoded-bytes level: the relay never decodes them, it just
    /// re-originates the accumulated blocks upstream (row counts come
    /// from the wire-validated block headers).
    raw_blocks: Vec<EncodedBlock>,
    /// Tuples absorbed into the open window (the next report's `tuples`).
    window_tuples: u64,
    /// Circuit-breaker trips heard from below, forwarded one per
    /// upstream report (the envelope has one `throttled` slot).
    pending_throttles: VecDeque<Throttled>,
    /// Next upstream seq for this query, per relay incarnation.
    seq: u64,
    /// Running baseline-relative sums over `sources` (kept incrementally
    /// so a flush is O(1) in the number of sources).
    cum_emitted: u64,
    cum_shed: u64,
    cum_truncated: u64,
    /// Whether anything (rows or counters) changed since the last flush.
    dirty: bool,
    sources: HashMap<(String, u64, u64), SourceState>,
}

impl QueryWindow {
    fn new() -> QueryWindow {
        QueryWindow {
            spec: None,
            groups: HashMap::new(),
            raw: Vec::new(),
            raw_blocks: Vec::new(),
            window_tuples: 0,
            pending_throttles: VecDeque::new(),
            seq: 0,
            cum_emitted: 0,
            cum_shed: 0,
            cum_truncated: 0,
            dirty: false,
            sources: HashMap::new(),
        }
    }
}

struct CoreState {
    incarnation: u64,
    windows: HashMap<QueryId, QueryWindow>,
    /// Retro reports queued for upstream, forwarded verbatim.
    retro: VecDeque<RetroReport>,
    /// Events carried by the queued retro reports.
    retro_events: u64,
    /// Ring seqs already absorbed, per originating agent identity.
    /// Deliberately *not* cleared by [`RelayCore::restart`]: a frame the
    /// previous incarnation queued and lost is on the crash-residue
    /// books, so a late transport duplicate of it must stay refused or
    /// its events would be double-counted (once as residue, once as
    /// delivered).
    retro_seen: HashMap<(String, u64, u64), BTreeSet<u64>>,
    stats: RelayStats,
}

/// The transport-agnostic heart of a relay: absorb downstream reports
/// into per-query merge windows, flush re-originated upstream reports.
/// Thread-safe behind one lock; the sim [`Relay`] and the live
/// [`live::RelayServer`] share it.
pub struct RelayCore {
    info: ProcessInfo,
    state: Mutex<CoreState>,
}

impl RelayCore {
    /// A relay reporting upstream under `info`'s identity, with a fresh
    /// incarnation.
    pub fn new(info: ProcessInfo) -> RelayCore {
        RelayCore {
            info,
            state: Mutex::new(CoreState {
                incarnation: NEXT_INCARNATION.fetch_add(1, Ordering::Relaxed),
                windows: HashMap::new(),
                retro: VecDeque::new(),
                retro_events: 0,
                retro_seen: HashMap::new(),
                stats: RelayStats::default(),
            }),
        }
    }

    /// The relay's upstream reporting identity.
    pub fn info(&self) -> &ProcessInfo {
        &self.info
    }

    /// The current incarnation (bumped by [`RelayCore::restart`]).
    pub fn incarnation(&self) -> u64 {
        self.state.lock().incarnation
    }

    /// Current counters.
    pub fn stats(&self) -> RelayStats {
        self.state.lock().stats
    }

    /// Observes a control-plane command on its way downstream. The relay
    /// only *learns* from it (each query's output shape, for the merge
    /// fold); forwarding is the transport's job.
    pub fn observe(&self, cmd: &Command) {
        if let Command::Install(code) = cmd {
            let mut st = self.state.lock();
            st.windows
                .entry(code.id)
                .or_insert_with(QueryWindow::new)
                .spec = Some(Arc::clone(&code.output));
        }
    }

    /// Re-learns query shapes from a full installed set (the relay-side
    /// analog of `Agent::sync` during epoch re-sync, and the recovery
    /// path after [`RelayCore::restart`]).
    pub fn sync(&self, installed: &[Arc<pivot_query::CompiledCode>]) {
        for code in installed {
            self.observe(&Command::Install(Arc::clone(code)));
        }
    }

    /// Absorbs one downstream report into its query's merge window.
    /// Duplicate and stale frames are refused (and tallied); everything
    /// else merges.
    pub fn absorb(&self, report: Report) {
        let st = &mut *self.state.lock();
        let window = st
            .windows
            .entry(report.query)
            .or_insert_with(QueryWindow::new);
        let key = (report.host, report.procid, report.incarnation);
        let src = window.sources.entry(key).or_insert_with(|| SourceState {
            baseline_seq: report.seq,
            next_contig: report.seq,
            pending: BTreeSet::new(),
            stale_seen: BTreeSet::new(),
            emitted_latest: report.emitted_cum.saturating_sub(report.tuples),
            shed_latest: report.shed_cum,
            truncated_latest: report.truncated_cum,
        });
        if report.seq < src.baseline_seq {
            // Overtaken by a relay restart: this incarnation's books open
            // at the baseline, and tuples from before it can no longer be
            // accounted anywhere. Surface the loss instead of hiding it.
            st.stats.reports_stale += 1;
            if src.stale_seen.insert(report.seq) {
                st.stats.tuples_stale += report.tuples;
            }
            return;
        }
        if report.seq < src.next_contig || !src.pending.insert(report.seq) {
            st.stats.reports_duplicate += 1;
            return;
        }
        while src.pending.remove(&src.next_contig) {
            src.next_contig += 1;
        }
        // Max-latch the cumulative counters and roll the deltas into the
        // window's running sums (reports can arrive out of order, so a
        // lower counter is old news, not a regression).
        let d_emitted = report.emitted_cum.saturating_sub(src.emitted_latest);
        let d_shed = report.shed_cum.saturating_sub(src.shed_latest);
        let d_trunc = report.truncated_cum.saturating_sub(src.truncated_latest);
        src.emitted_latest += d_emitted;
        src.shed_latest += d_shed;
        src.truncated_latest += d_trunc;
        window.cum_emitted += d_emitted;
        window.cum_shed += d_shed;
        window.cum_truncated += d_trunc;
        window.window_tuples += report.tuples;
        if let Some(t) = report.throttled {
            window.pending_throttles.push_back(t);
        }
        match report.rows {
            ReportRows::Raw(rows) => window.raw.extend(rows),
            ReportRows::RawEncoded(blocks) => window.raw_blocks.extend(blocks),
            ReportRows::Grouped(rows) => {
                if let Some(spec) = &window.spec {
                    for (key, states) in rows {
                        merge_grouped(&mut window.groups, spec, key, &states);
                    }
                } else {
                    // Shape not learned yet (reports raced ahead of the
                    // install on this link): fold without the init row.
                    // Equivalent because every init state is the merge
                    // identity (pinned by the merge property tests).
                    for (key, states) in rows {
                        match window.groups.entry(key) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                for (m, s) in e.get_mut().iter_mut().zip(&states) {
                                    m.merge(s);
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(states);
                            }
                        }
                    }
                }
            }
        }
        window.dirty = true;
        st.stats.reports_in += 1;
        st.stats.tuples_in += report.tuples;
    }

    /// Flushes every dirty window: one re-originated upstream report per
    /// query (plus row-less extras when more than one throttle is
    /// pending), in query-id order for determinism.
    pub fn flush(&self, now: u64) -> Vec<Report> {
        let st = &mut *self.state.lock();
        let mut out = Vec::new();
        let mut qids: Vec<QueryId> = st.windows.keys().copied().collect();
        qids.sort_unstable_by_key(|q| q.0);
        for qid in qids {
            let incarnation = st.incarnation;
            let window = st.windows.get_mut(&qid).expect("window exists");
            if !window.dirty && window.pending_throttles.is_empty() {
                continue;
            }
            let streaming = window.spec.as_ref().map_or(
                window.groups.is_empty()
                    && !(window.raw.is_empty() && window.raw_blocks.is_empty()),
                |s| s.streaming,
            );
            let mut groups: Vec<(GroupKey, Vec<AggState>)> = window.groups.drain().collect();
            // Deterministic frame content regardless of hash order.
            groups.sort_unstable_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
            let rows = if streaming {
                if window.raw_blocks.is_empty() {
                    ReportRows::Raw(std::mem::take(&mut window.raw))
                } else {
                    // Encoded coalescing: re-originate the accumulated
                    // blocks untouched; any plain rows that arrived in the
                    // same window ride along as one extra block so the
                    // upstream frame stays single-variant.
                    let mut blocks = std::mem::take(&mut window.raw_blocks);
                    for chunk in window.raw.chunks(colblock::MAX_BLOCK_ROWS) {
                        blocks.push(EncodedBlock::encode(chunk));
                    }
                    window.raw.clear();
                    ReportRows::RawEncoded(blocks)
                }
            } else {
                ReportRows::Grouped(groups)
            };
            // The first report of the flush carries the window's rows and
            // tuples; any further pending throttles ride out on row-less
            // extras (each consuming one upstream seq), because the
            // envelope has exactly one `throttled` slot.
            let mut head = Some((window.window_tuples, rows));
            window.window_tuples = 0;
            window.dirty = false;
            loop {
                let throttled = window.pending_throttles.pop_front();
                if head.is_none() && throttled.is_none() {
                    break;
                }
                let (tuples, rows) = head.take().unwrap_or_else(|| {
                    (
                        0,
                        if streaming {
                            ReportRows::Raw(Vec::new())
                        } else {
                            ReportRows::Grouped(Vec::new())
                        },
                    )
                });
                let report = Report {
                    query: qid,
                    host: self.info.host.clone(),
                    procid: self.info.procid,
                    procname: self.info.procname.clone(),
                    incarnation,
                    time: now,
                    seq: window.seq,
                    tuples,
                    emitted_cum: window.cum_emitted,
                    shed_cum: window.cum_shed,
                    truncated_cum: window.cum_truncated,
                    throttled,
                    rows,
                };
                window.seq += 1;
                st.stats.reports_out += 1;
                st.stats.tuples_out += report.tuples;
                out.push(report);
            }
        }
        out
    }

    /// Queues one downstream retro report for upstream, verbatim: the
    /// originating agent's (host, procid, incarnation, seq) identity
    /// survives the hop so the frontend's dedup works end to end. The
    /// queue is bounded by [`RETRO_QUEUE_CAP`] events; the oldest frames
    /// shed first, tallied in [`RelayStats::retro_events_shed`].
    /// Exact `(source, ring seq)` repeats — transport duplicates below
    /// this hop — are suppressed and tallied in
    /// [`RelayStats::retro_duplicate`]; the suppression ledger survives
    /// [`RelayCore::restart`] (see `CoreState::retro_seen`).
    pub fn absorb_retro(&self, report: RetroReport) {
        let st = &mut *self.state.lock();
        let key = (report.host.clone(), report.procid, report.incarnation);
        if !st.retro_seen.entry(key).or_default().insert(report.seq) {
            st.stats.retro_duplicate += 1;
            return;
        }
        st.retro_events += report.events.len() as u64;
        st.retro.push_back(report);
        st.stats.retro_in += 1;
        while st.retro_events > RETRO_QUEUE_CAP && st.retro.len() > 1 {
            let shed = st.retro.pop_front().expect("len > 1");
            let n = shed.events.len() as u64;
            st.retro_events -= n;
            st.stats.retro_events_shed += n;
        }
    }

    /// Drains the retro pass-through queue for upstream forwarding.
    pub fn flush_retro(&self) -> Vec<RetroReport> {
        let st = &mut *self.state.lock();
        st.retro_events = 0;
        let out: Vec<RetroReport> = st.retro.drain(..).collect();
        st.stats.retro_out += out.len() as u64;
        out
    }

    /// Events currently queued in retro reports awaiting upstream (what
    /// a crash right now would destroy).
    pub fn buffered_retro_events(&self) -> u64 {
        self.state.lock().retro_events
    }

    /// Tuples currently absorbed but unflushed, across all windows (what
    /// a crash right now would destroy).
    pub fn buffered_tuples(&self) -> u64 {
        self.state
            .lock()
            .windows
            .values()
            .map(|w| w.window_tuples)
            .sum()
    }

    /// Simulates a relay crash + restart: the open windows (and their
    /// unflushed tuples) are destroyed and returned as [`CrashResidue`],
    /// every source track is dropped (sources re-baseline on next
    /// contact), the upstream seq space restarts at 0 under a fresh
    /// incarnation. Learned query shapes are dropped too — recovery
    /// re-learns them via [`RelayCore::sync`], mirroring an agent's
    /// post-crash epoch re-sync.
    pub fn restart(&self) -> CrashResidue {
        let st = &mut *self.state.lock();
        let window_tuples: u64 = st.windows.values().map(|w| w.window_tuples).sum();
        st.windows.clear();
        let retro_events = st.retro_events;
        st.retro.clear();
        st.retro_events = 0;
        st.incarnation = NEXT_INCARNATION.fetch_add(1, Ordering::Relaxed);
        CrashResidue {
            window_tuples,
            retro_events,
        }
    }
}

/// A simulated relay node: a [`RelayCore`] fronting any downstream
/// [`Bus`]. Composes into trees — `Relay` over `ChaosBus` over `Relay`
/// over `LocalBus` gives two relay hops with faults on the inter-tier
/// links — and the whole tree is itself a `Bus` the frontend drains.
pub struct Relay<B> {
    core: RelayCore,
    inner: B,
}

impl<B: Bus> Relay<B> {
    /// Wraps `inner` (the downstream side) in a relay reporting upstream
    /// as `info`.
    pub fn new(inner: B, info: ProcessInfo) -> Relay<B> {
        Relay {
            core: RelayCore::new(info),
            inner,
        }
    }

    /// The relay's accounting core.
    pub fn core(&self) -> &RelayCore {
        &self.core
    }

    /// The downstream bus.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Pulls downstream reports into the merge windows *without*
    /// flushing upstream — the mid-window state a crash test needs.
    pub fn pull(&self, now: u64) {
        for r in self.inner.drain_reports(now) {
            self.core.absorb(r);
        }
    }

    /// Pulls downstream retro frames into the pass-through queue
    /// *without* flushing upstream — the mid-queue state a crash test
    /// needs (the queued events die in the [`CrashResidue`]).
    pub fn pull_retro(&self, now: u64) {
        for r in self.inner.drain_retro(now) {
            self.core.absorb_retro(r);
        }
    }
}

impl<B: Bus> Bus for Relay<B> {
    /// Control plane is proxied transparently: the relay learns what it
    /// needs and the command continues to every downstream agent.
    fn broadcast(&self, cmd: &Command) {
        self.core.observe(cmd);
        self.inner.broadcast(cmd);
    }

    /// One upstream drain = absorb everything downstream produced, then
    /// flush the merged windows.
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        self.pull(now);
        self.core.flush(now)
    }

    /// Retro frames pass through verbatim (no re-origination; see
    /// [`RelayCore::absorb_retro`]).
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        self.pull_retro(now);
        self.core.flush_retro()
    }
}

/// Fan-in plumbing: one bus over many independent subtrees. Broadcasts
/// reach every child; drains concatenate in child order.
pub struct FanIn<B> {
    children: Vec<B>,
}

impl<B: Bus> FanIn<B> {
    /// A fan-in over `children`.
    pub fn new(children: Vec<B>) -> FanIn<B> {
        FanIn { children }
    }

    /// The subtrees.
    pub fn children(&self) -> &[B] {
        &self.children
    }
}

impl<B: Bus> Bus for FanIn<B> {
    fn broadcast(&self, cmd: &Command) {
        for c in &self.children {
            c.broadcast(cmd);
        }
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        let mut out = Vec::new();
        for c in &self.children {
            out.extend(c.drain_reports(now));
        }
        out
    }
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        let mut out = Vec::new();
        for c in &self.children {
            out.extend(c.drain_retro(now));
        }
        out
    }
}
