//! The live (TCP) relay: a standalone fan-in process between agents and
//! the frontend.
//!
//! A [`RelayServer`] owns both halves of the tier:
//!
//! - **Downstream**, it is a full [`TcpBusServer`]: agents (or further
//!   relays) connect to [`RelayServer::addr`] exactly as they would to
//!   the frontend — same `Hello`/`HelloRelay` registration, same
//!   epoch-tagged `Sync` answer, same reconnect discipline. The tree is
//!   invisible to leaves.
//! - **Upstream**, it holds one connection to its parent (another relay
//!   or the frontend), registered with [`Message::HelloRelay`] so the
//!   parent can tell tiers apart. Control-plane frames arriving from
//!   upstream are applied to the relay's [`RelayCore`] and re-broadcast
//!   downstream; `Sync` frames are proxied wholesale via
//!   [`TcpBusServer::resync`], so epoch re-sync crosses the tier in one
//!   frame per hop. If the upstream link dies without a `Goodbye` the
//!   relay reconnects with the same capped-backoff policy a leaf agent
//!   uses, re-registers, and the answering `Sync` heals both the relay
//!   and (via `resync`) its whole subtree.
//!
//! A flusher thread drains downstream reports into the merge windows on
//! every tick and, while connected, writes the re-originated batch
//! upstream with one vectored write ([`write_frames`]) — the coalescing
//! that turns `N` leaf frame streams into one per relay.
//!
//! [`RelayServer::crash`] is the chaos hook: it destroys the merge
//! windows (returning the [`CrashResidue`] for the embedding's
//! `crash_lost` books), severs every downstream connection without a
//! `Goodbye`, and drops the upstream link the same way, so both sides
//! observe a real crash and run their recovery paths against the same
//! listener socket.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pivot_core::{Bus, ProcessInfo};
use pivot_live::bus::{ConnStatus, ReconnectPolicy, TcpBusServer};
use pivot_live::frame::{read_frame, write_frame, write_frames};
use pivot_live::proto::{
    decode_message_versioned, encode_message, encode_message_v, Message, MIN_PROTO_VERSION,
};

use crate::{CrashResidue, RelayCore, RelayStats};

/// State shared by the [`RelayServer`] handle and its service threads.
struct UpShared {
    core: Arc<RelayCore>,
    down: Arc<TcpBusServer>,
    upstream: SocketAddr,
    /// The live upstream write half; replaced in place on reconnect.
    writer: Mutex<TcpStream>,
    status: Mutex<ConnStatus>,
    /// Last upstream install epoch observed in a `Sync` frame.
    epoch: AtomicU64,
    /// Successful upstream reconnections.
    reconnects: AtomicU64,
    /// Highest protocol version seen from the parent this connection
    /// (max-latched from received frames, reset to the floor on
    /// reconnect). Re-originated reports are encoded at this version, so
    /// encoded row blocks are forwarded as-is to a v6 parent and
    /// transcoded to plain rows for a v5 one.
    peer_version: AtomicU8,
    stop: AtomicBool,
    policy: ReconnectPolicy,
}

impl UpShared {
    fn set_status(&self, s: ConnStatus) {
        *self.status.lock() = s;
    }
}

/// A live fan-in relay process: downstream bus server + one upstream
/// connection + an in-flight merge core. See the module docs.
pub struct RelayServer {
    shared: Arc<UpShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl RelayServer {
    /// Starts a relay on an ephemeral loopback port, connected upstream
    /// to `upstream`, with reconnection enabled (jitter seeded from the
    /// relay's procid).
    pub fn start(
        upstream: SocketAddr,
        info: ProcessInfo,
        flush_interval: Duration,
    ) -> io::Result<RelayServer> {
        let seed = info.procid;
        RelayServer::bind(
            "127.0.0.1:0",
            upstream,
            info,
            flush_interval,
            ReconnectPolicy::new(seed),
        )
    }

    /// Starts a relay listening on `listen` with an explicit
    /// [`ReconnectPolicy`] for the upstream link.
    pub fn bind(
        listen: &str,
        upstream: SocketAddr,
        info: ProcessInfo,
        flush_interval: Duration,
        policy: ReconnectPolicy,
    ) -> io::Result<RelayServer> {
        let down = Arc::new(TcpBusServer::bind(listen)?);
        let core = Arc::new(RelayCore::new(info));
        let stream = TcpStream::connect(upstream)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let shared = Arc::new(UpShared {
            core,
            down,
            upstream,
            writer: Mutex::new(writer),
            status: Mutex::new(ConnStatus::Connected),
            epoch: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            peer_version: AtomicU8::new(MIN_PROTO_VERSION),
            stop: AtomicBool::new(false),
            policy,
        });
        write_frame(
            &mut *shared.writer.lock(),
            &encode_message(&Message::HelloRelay(shared.core.info().clone())),
        )?;

        let mut threads = Vec::new();
        let reader_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            reader_loop(stream, &reader_shared);
        }));
        let flusher_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            // Interruptible sleep: shutdown() must not wait out a long
            // flush interval.
            while !sleep_unless_stopped(flush_interval, &flusher_shared.stop) {
                flush_upstream(&flusher_shared);
            }
            // Final flush so an orderly shutdown forwards the open window.
            flush_upstream(&flusher_shared);
        }));

        Ok(RelayServer {
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The downstream address agents (or child relays) connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.down.addr()
    }

    /// The downstream bus server (agent/relay counts, epoch, chaos
    /// hooks).
    pub fn downstream(&self) -> &TcpBusServer {
        &self.shared.down
    }

    /// The relay's accounting core.
    pub fn core(&self) -> &RelayCore {
        &self.shared.core
    }

    /// Current counters.
    pub fn stats(&self) -> RelayStats {
        self.shared.core.stats()
    }

    /// Upstream connection status.
    pub fn status(&self) -> ConnStatus {
        *self.shared.status.lock()
    }

    /// Successful upstream reconnections so far.
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::SeqCst)
    }

    /// The last upstream install epoch observed in a `Sync` frame.
    pub fn upstream_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Blocks until the upstream link is connected and its observed
    /// epoch reaches `epoch`, or `timeout` elapses.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.status() == ConnStatus::Connected && self.upstream_epoch() >= epoch {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Absorbs pending downstream reports and flushes the merged windows
    /// upstream immediately (when connected; otherwise the windows keep
    /// accumulating and nothing is lost).
    pub fn flush_now(&self) {
        flush_upstream(&self.shared);
    }

    /// Absorbs pending downstream reports into the merge windows
    /// *without* flushing upstream — the mid-window state a crash test
    /// needs to stage deterministically (see [`RelayCore::buffered_tuples`]).
    pub fn pull_now(&self) {
        for r in self.shared.down.drain_reports(pivot_live::now_nanos()) {
            self.shared.core.absorb(r);
        }
    }

    /// Crashes the relay the way a dying process would, while keeping
    /// the listener socket so the same address recovers: the open merge
    /// windows are destroyed (returned as [`CrashResidue`] for the
    /// embedding's `crash_lost` books), every downstream connection is
    /// severed without a `Goodbye` (agents reconnect and re-`Sync`
    /// against this listener), and the upstream link is torn down the
    /// same way so the reader re-registers under the relay's fresh
    /// incarnation and heals the subtree from the answering `Sync`.
    pub fn crash(&self) -> CrashResidue {
        let residue = self.shared.core.restart();
        self.shared.down.sever();
        let _ = self.shared.writer.lock().shutdown(Shutdown::Both);
        residue
    }

    /// Flushes once more, announces `Goodbye` upstream, then shuts down
    /// the downstream server (orderly: downstream peers get `Goodbye`s)
    /// and joins the service threads.
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if *self.shared.status.lock() == ConnStatus::Connected {
            flush_upstream_inner(&self.shared);
            let _ = write_frame(
                &mut *self.shared.writer.lock(),
                &encode_message(&Message::Goodbye),
            );
        }
        self.shared.set_status(ConnStatus::Closed);
        let _ = self.shared.writer.lock().shutdown(Shutdown::Both);
        self.shared.down.shutdown();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RelayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Absorb + (if connected) flush. Absorption always happens so the
/// windows keep merging during an upstream outage; flushing into a dead
/// socket would consume seqs for frames nothing will deliver.
fn flush_upstream(shared: &UpShared) {
    if *shared.status.lock() != ConnStatus::Connected {
        let now = pivot_live::now_nanos();
        for r in shared.down.drain_reports(now) {
            shared.core.absorb(r);
        }
        for r in shared.down.drain_retro(now) {
            shared.core.absorb_retro(r);
        }
        return;
    }
    flush_upstream_inner(shared);
}

fn flush_upstream_inner(shared: &UpShared) {
    let now = pivot_live::now_nanos();
    for r in shared.down.drain_reports(now) {
        shared.core.absorb(r);
    }
    for r in shared.down.drain_retro(now) {
        shared.core.absorb_retro(r);
    }
    // Reports carry versioned constructs, so they are encoded at the
    // parent's negotiated version (see `UpShared::peer_version`).
    let peer_version = shared.peer_version.load(Ordering::SeqCst);
    let mut batch: Vec<Vec<u8>> = shared
        .core
        .flush(now)
        .into_iter()
        .map(|r| encode_message_v(&Message::Report(r), peer_version))
        .collect();
    // Retro frames exist only at v7+ and are never down-encoded; for a
    // down-level parent they stay in the bounded pass-through queue,
    // which sheds its oldest under pressure.
    if peer_version >= 7 {
        batch.extend(
            shared
                .core
                .flush_retro()
                .into_iter()
                .map(|r| encode_message_v(&Message::Retro(r), peer_version)),
        );
    }
    if !batch.is_empty() {
        let _ = write_frames(&mut *shared.writer.lock(), &batch);
    }
}

/// The upstream reader: applies control-plane frames to the core and the
/// downstream subtree, with reconnection on lost links.
fn reader_loop(mut read: TcpStream, shared: &Arc<UpShared>) {
    loop {
        let orderly = read_upstream_session(&mut read, shared);
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if orderly {
            shared.set_status(ConnStatus::Closed);
            return;
        }
        shared.set_status(ConnStatus::Reconnecting);
        match reconnect_upstream(shared) {
            Some(new_read) => {
                read = new_read;
                shared.reconnects.fetch_add(1, Ordering::SeqCst);
                shared.set_status(ConnStatus::Connected);
            }
            None => {
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.set_status(ConnStatus::Lost);
                }
                return;
            }
        }
    }
}

/// Reads one upstream session; returns whether it ended orderly.
fn read_upstream_session(read: &mut TcpStream, shared: &UpShared) -> bool {
    while let Ok(payload) = read_frame(read) {
        let msg = decode_message_versioned(&payload).map(|(v, msg)| {
            // The parent's frames advertise its version; max-latch it so
            // re-originated reports speak the parent's dialect.
            shared.peer_version.fetch_max(v, Ordering::SeqCst);
            msg
        });
        match msg {
            Ok(Message::Command(cmd)) => {
                // Learn, then proxy: the downstream broadcast caches the
                // command for late joiners and bumps the subtree's epoch.
                shared.core.observe(&cmd);
                shared.down.broadcast(&cmd);
            }
            Ok(Message::Sync {
                epoch,
                queries,
                budgets,
            }) => {
                shared.core.sync(&queries);
                shared.epoch.store(epoch, Ordering::SeqCst);
                shared.down.resync(queries, budgets);
            }
            Ok(Message::Goodbye) => return true,
            // Hello/HelloRelay/Report/Retro flow toward the frontend only.
            Ok(
                Message::Hello(_) | Message::HelloRelay(_) | Message::Report(_) | Message::Retro(_),
            )
            | Err(_) => return false,
        }
    }
    false
}

/// Re-establishes the upstream connection per the policy, re-registering
/// with a fresh `HelloRelay` (the parent answers with a `Sync` that
/// heals the relay and, via `resync`, its whole subtree).
fn reconnect_upstream(shared: &Arc<UpShared>) -> Option<TcpStream> {
    for attempt in 0..shared.policy.max_attempts {
        if sleep_unless_stopped(shared.policy.backoff(attempt), &shared.stop) {
            return None;
        }
        let Ok(stream) = TcpStream::connect(shared.upstream) else {
            continue;
        };
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        *shared.writer.lock() = write_half;
        // Negotiation is per-connection: a restarted parent may speak an
        // older dialect than the previous incarnation.
        shared
            .peer_version
            .store(MIN_PROTO_VERSION, Ordering::SeqCst);
        let hello = encode_message(&Message::HelloRelay(shared.core.info().clone()));
        if write_frame(&mut *shared.writer.lock(), &hello).is_ok() {
            return Some(stream);
        }
    }
    None
}

/// Sleeps `d` in small slices, returning `true` (and early) if `stop` is
/// raised.
fn sleep_unless_stopped(d: Duration, stop: &AtomicBool) -> bool {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2).min(deadline - Instant::now()));
    }
    stop.load(Ordering::SeqCst)
}
