//! Live (real sockets, real processes-worth-of-threads) tree topology:
//! agents → two relays → frontend. Pins that the tier is transparent to
//! leaves (same connect/Hello/Sync dance), that the frontend sees relay
//! peers rather than a thundering herd of agents, that results and loss
//! accounting stay exact through the tree, and that a relay crash
//! mid-window surfaces its residue while both sides recover through
//! reconnect + epoch re-sync.

use std::time::{Duration, Instant};

use pivot_baggage::Baggage;
use pivot_core::{ProcessInfo, QueryHandle};
use pivot_live::{tracepoint, ConnStatus, LiveAgent, LiveFrontend};
use pivot_model::Value;
use pivot_relay::live::RelayServer;

const QUERY: &str = "From e In Exec GroupBy e.k Select e.k, SUM(e.v)";

fn agent_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("host-{slot}"),
        procid: slot,
        procname: "worker".into(),
    }
}

fn relay_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("relay-{slot}"),
        procid: slot,
        procname: "pivot-relay".into(),
    }
}

fn drive(agent: &LiveAgent, key: &str, n: u64) {
    for _ in 0..n {
        let scope = pivot_live::attach(Baggage::new());
        tracepoint(
            agent.agent(),
            "Exec",
            &[("k", Value::str(key)), ("v", Value::I64(1))],
        );
        drop(scope);
    }
}

/// Polls (relay flushes + frontend drain) until the SUM over all groups
/// reaches `want`, or panics at the deadline.
fn wait_for_total(fe: &mut LiveFrontend, handle: &QueryHandle, relays: &[&RelayServer], want: i64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for r in relays {
            r.flush_now();
        }
        let got: i64 = fe
            .results(handle)
            .rows()
            .iter()
            .filter_map(|r| r.values[1].as_f64())
            .map(|v| v as i64)
            .sum();
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "total never reached {want} (last: {got})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn agents_report_through_two_relays() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    fe.define("Exec", ["k", "v"]);
    let handle = fe.install_named("Q", QUERY).expect("query installs");

    // Two relays join upstream; the frontend counts them as relay peers,
    // not agents.
    let relay_a = RelayServer::start(fe.addr(), relay_info(0), Duration::from_millis(20))
        .expect("relay A starts");
    let relay_b = RelayServer::start(fe.addr(), relay_info(1), Duration::from_millis(20))
        .expect("relay B starts");
    assert!(fe.bus().wait_for_relays(2, Duration::from_secs(10)));
    assert_eq!(
        fe.bus().agent_count(),
        0,
        "no leaf connects to the frontend"
    );
    assert!(relay_a.wait_for_epoch(1, Duration::from_secs(10)));
    assert!(relay_b.wait_for_epoch(1, Duration::from_secs(10)));

    // Three agents per relay, connecting exactly as they would to a
    // frontend — the tier is invisible to leaves.
    let interval = Duration::from_millis(10);
    let mut agents = Vec::new();
    for slot in 0..3u64 {
        agents.push(LiveAgent::connect(relay_a.addr(), agent_info(slot), interval).expect("agent"));
    }
    for slot in 3..6u64 {
        agents.push(LiveAgent::connect(relay_b.addr(), agent_info(slot), interval).expect("agent"));
    }
    assert!(relay_a
        .downstream()
        .wait_for_agents(3, Duration::from_secs(10)));
    assert!(relay_b
        .downstream()
        .wait_for_agents(3, Duration::from_secs(10)));
    for agent in &agents {
        // The downstream Sync (proxied from the upstream one) carries the
        // installed query; epoch ≥ 1 proves it arrived.
        assert!(agent.wait_for_epoch(1, Duration::from_secs(10)));
        assert!(agent.agent().registry().has_query(handle.id));
    }

    for (i, agent) in agents.iter().enumerate() {
        drive(agent, if i % 2 == 0 { "even" } else { "odd" }, 10);
        agent.flush_now();
    }
    wait_for_total(&mut fe, &handle, &[&relay_a, &relay_b], 60);

    // Books balance through the tree, and the frontend heard from relay
    // identities only.
    let res = fe.results(&handle);
    let loss = res.loss();
    assert_eq!(loss.tuples_emitted, 60);
    assert_eq!(loss.tuples_delivered, 60);
    assert_eq!(loss.tuples_dropped, 0);
    assert!(!loss.is_degraded());
    let stats_a = relay_a.stats();
    let stats_b = relay_b.stats();
    assert_eq!(stats_a.tuples_in + stats_b.tuples_in, 60);
    assert!(
        stats_a.reports_out < stats_a.reports_in,
        "relay A coalesced {} inbound reports into {}",
        stats_a.reports_in,
        stats_a.reports_out
    );

    for agent in &agents {
        agent.shutdown();
    }
    relay_a.shutdown();
    relay_b.shutdown();
}

#[test]
fn relay_crash_mid_window_surfaces_residue_and_recovers() {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    fe.define("Exec", ["k", "v"]);
    let handle = fe.install_named("Q", QUERY).expect("query installs");

    // A long flush interval makes the window state deterministic: only
    // explicit flush_now()/pull_now() calls move data upstream.
    let relay = RelayServer::start(fe.addr(), relay_info(0), Duration::from_secs(30))
        .expect("relay starts");
    assert!(relay.wait_for_epoch(1, Duration::from_secs(10)));

    let interval = Duration::from_secs(30); // explicit flushes only
    let agents: Vec<LiveAgent> = (0..2u64)
        .map(|slot| LiveAgent::connect(relay.addr(), agent_info(slot), interval).expect("agent"))
        .collect();
    assert!(relay
        .downstream()
        .wait_for_agents(2, Duration::from_secs(10)));
    for agent in &agents {
        assert!(agent.wait_for_epoch(1, Duration::from_secs(10)));
    }

    // Phase 1: delivered end-to-end before the fault.
    for agent in &agents {
        drive(agent, "pre", 10);
        agent.flush_now();
    }
    wait_for_total(&mut fe, &handle, &[&relay], 20);

    // Phase 2: absorbed into the relay's open window but never flushed.
    for agent in &agents {
        drive(agent, "mid", 5);
        agent.flush_now();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while relay.core().buffered_tuples() < 10 {
        relay.pull_now();
        assert!(
            Instant::now() < deadline,
            "window never absorbed phase 2 (buffered: {})",
            relay.core().buffered_tuples()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Crash: the open window dies and is surfaced, not hidden.
    let old_incarnation = relay.core().incarnation();
    let residue = relay.crash();
    assert_eq!(residue.window_tuples, 10, "phase 2 died with the window");
    assert_ne!(relay.core().incarnation(), old_incarnation);

    // Both sides recover against the same listener: the relay re-registers
    // upstream (healing its query shapes from the answering Sync), and the
    // severed agents reconnect downstream.
    let deadline = Instant::now() + Duration::from_secs(20);
    while relay.status() != ConnStatus::Connected || relay.reconnects() < 1 {
        assert!(Instant::now() < deadline, "relay upstream never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }
    for agent in &agents {
        let deadline = Instant::now() + Duration::from_secs(20);
        while agent.status() != ConnStatus::Connected || agent.reconnects() < 1 {
            assert!(Instant::now() < deadline, "agent never reconnected");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Phase 3: flows again through the restarted relay.
    for agent in &agents {
        drive(agent, "post", 7);
        agent.flush_now();
    }
    wait_for_total(&mut fe, &handle, &[&relay], 34);

    // The loss identity holds end-to-end: 44 emitted by the agents,
    // 34 delivered, 10 destroyed by the relay crash (surfaced as the
    // residue), 0 unaccounted. Each relay incarnation balances at the
    // frontend on its own.
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.tuples_delivered, 34);
    assert_eq!(loss.tuples_dropped, 0, "no silent transport loss");
    assert_eq!(
        44,
        loss.tuples_delivered + residue.window_tuples + loss.tuples_dropped,
        "emitted == delivered + crash_lost"
    );

    for agent in &agents {
        agent.shutdown();
    }
    relay.shutdown();
}
