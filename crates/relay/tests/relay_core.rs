//! Deterministic pins for the relay tier's semantics: in-flight partial
//! merge, fan-in ratios, envelope re-origination, duplicate/stale
//! refusal through a hop, crash residue, and throttle forwarding. The
//! scale sweep exercises the same machinery at 1000+ agents under
//! chaos; these tests pin each edge in isolation.

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_core::{Agent, Bus, Frontend, LocalBus, ProcessInfo, QueryHandle, Report};
use pivot_model::Value;
use pivot_relay::{FanIn, Relay, RelayCore};

const QUERY: &str = "From e In Exec GroupBy e.k Select e.k, SUM(e.v)";
const MS: u64 = 1_000_000;

fn frontend_with_query() -> (Frontend, QueryHandle) {
    let mut fe = Frontend::new();
    fe.define("Exec", ["k", "v"]);
    let handle = fe.install_named("Q", QUERY).expect("query installs");
    (fe, handle)
}

fn fresh_agent(fe: &Frontend, slot: u64) -> Arc<Agent> {
    let agent = Arc::new(Agent::new(ProcessInfo {
        host: format!("host-{slot}"),
        procid: slot,
        procname: "worker".into(),
    }));
    agent.sync(&fe.installed());
    agent
}

fn invoke(agent: &Agent, now: u64, key: &str, v: i64) {
    let mut bag = Baggage::new();
    agent.invoke(
        "Exec",
        &mut bag,
        now,
        &[("k", Value::str(key)), ("v", Value::I64(v))],
    );
}

fn flush_one(agent: &Agent, now: u64) -> Report {
    let mut reports = agent.flush(now);
    assert_eq!(reports.len(), 1, "one woven query, one report");
    reports.remove(0)
}

fn total(fe: &Frontend, handle: &QueryHandle) -> i64 {
    fe.results(handle)
        .rows()
        .iter()
        .map(|r| match r.values[1] {
            Value::I64(n) => n,
            ref v => panic!("SUM column is not an integer: {v:?}"),
        })
        .sum()
}

fn relay_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("relay-{slot}"),
        procid: slot,
        procname: "pivot-relay".into(),
    }
}

/// Three agents behind one relay: the frontend receives *one* merged
/// report per flush instead of three, totals are exact, and the loss
/// books stay balanced through the hop.
#[test]
fn relay_fans_in_and_merges() {
    let (mut fe, handle) = frontend_with_query();
    let mut bus = LocalBus::new();
    for slot in 0..3 {
        bus.register(fresh_agent(&fe, slot));
    }
    let relay = Relay::new(bus, relay_info(0));
    for cmd in fe.drain_commands() {
        relay.broadcast(&cmd);
    }

    for (i, agent) in relay.inner().agents().iter().enumerate() {
        for _ in 0..=i {
            invoke(agent, MS, "a", 1);
        }
    }
    let reports = relay.drain_reports(2 * MS);
    assert_eq!(
        reports.len(),
        1,
        "three downstream streams fan in to one upstream report"
    );
    assert_eq!(reports[0].tuples, 6);
    assert_eq!(reports[0].host, "relay-0", "envelope is re-originated");
    for r in reports {
        fe.accept(r);
    }

    assert_eq!(total(&fe, &handle), 6);
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.tuples_emitted, 6);
    assert_eq!(loss.tuples_delivered, 6);
    assert_eq!(loss.tuples_dropped, 0);
    assert!(!loss.is_degraded());

    let stats = relay.core().stats();
    assert_eq!(stats.reports_in, 3);
    assert_eq!(stats.reports_out, 1);
    assert_eq!(stats.tuples_in, 6);
    assert_eq!(stats.tuples_out, 6);
}

/// A two-hop tree (agents → leaf relays → root relay → frontend) keeps
/// totals exact and the loss identity balanced; the root's merge folds
/// the leaves' already-merged partials (associativity in anger).
#[test]
fn two_hop_tree_balances_exactly() {
    let (mut fe, handle) = frontend_with_query();
    let mut leaves = Vec::new();
    for leaf in 0..2 {
        let mut bus = LocalBus::new();
        for slot in 0..4 {
            bus.register(fresh_agent(&fe, leaf * 4 + slot));
        }
        leaves.push(Relay::new(bus, relay_info(leaf)));
    }
    let root = Relay::new(FanIn::new(leaves), relay_info(9));
    for cmd in fe.drain_commands() {
        root.broadcast(&cmd);
    }

    let mut expect = 0i64;
    for (li, leaf) in root.inner().children().iter().enumerate() {
        for (ai, agent) in leaf.inner().agents().iter().enumerate() {
            let v = (li * 4 + ai + 1) as i64;
            invoke(agent, MS, if ai % 2 == 0 { "even" } else { "odd" }, v);
            expect += v;
        }
    }
    let reports = root.drain_reports(2 * MS);
    assert_eq!(reports.len(), 1, "eight agents, two hops, one frame");
    for r in reports {
        fe.accept(r);
    }

    assert_eq!(total(&fe, &handle), expect);
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.tuples_emitted, 8);
    assert_eq!(loss.tuples_delivered, 8);
    assert_eq!(loss.tuples_dropped, 0);
}

/// A reconnecting downstream link re-delivers a frame; the relay
/// suppresses it exactly like the frontend would, so nothing
/// double-counts through the hop.
#[test]
fn duplicate_through_hop_is_suppressed() {
    let (mut fe, handle) = frontend_with_query();
    let core = RelayCore::new(relay_info(0));
    core.sync(&fe.installed());
    let agent = fresh_agent(&fe, 0);

    for _ in 0..3 {
        invoke(&agent, MS, "a", 1);
    }
    let frame = flush_one(&agent, MS);
    core.absorb(frame.clone());
    core.absorb(frame.clone());
    for r in core.flush(2 * MS) {
        fe.accept(r);
    }
    core.absorb(frame);
    for r in core.flush(3 * MS) {
        fe.accept(r);
    }

    assert_eq!(total(&fe, &handle), 3, "replays merge exactly once");
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.tuples_delivered, 3);
    assert_eq!(loss.tuples_emitted, 3);
    assert_eq!(loss.tuples_dropped, 0);
    let stats = core.stats();
    assert_eq!(stats.reports_in, 1);
    assert_eq!(stats.reports_duplicate, 2);
}

/// An in-flight frame overtaken by a relay restart arrives with a seq
/// before the new incarnation's baseline: it is refused and its tuples
/// surface in `tuples_stale` (they left every ledger), keeping the
/// global ground-truth identity balanced rather than silently leaking.
#[test]
fn stale_frame_after_relay_restart_surfaces_as_loss() {
    let (mut fe, handle) = frontend_with_query();
    let core = RelayCore::new(relay_info(0));
    core.sync(&fe.installed());
    let agent = fresh_agent(&fe, 0);

    // seq 0 delivered through the relay normally.
    invoke(&agent, MS, "a", 1);
    core.absorb(flush_one(&agent, MS));
    for r in core.flush(MS) {
        fe.accept(r);
    }

    // seq 1 is in flight when the relay restarts...
    invoke(&agent, 2 * MS, "a", 1);
    invoke(&agent, 2 * MS, "a", 1);
    let in_flight = flush_one(&agent, 2 * MS);
    let residue = core.restart();
    assert_eq!(residue.window_tuples, 0, "window was flushed");
    core.sync(&fe.installed());

    // ...seq 2 arrives first and sets the new incarnation's baseline.
    invoke(&agent, 3 * MS, "a", 1);
    core.absorb(flush_one(&agent, 3 * MS));
    // The overtaken seq 1 (re-delivered twice) is stale, tallied once.
    core.absorb(in_flight.clone());
    core.absorb(in_flight);
    for r in core.flush(4 * MS) {
        fe.accept(r);
    }

    let loss = fe.results(&handle).loss();
    let stats = core.stats();
    assert_eq!(stats.reports_stale, 2);
    assert_eq!(stats.tuples_stale, 2, "stale tuples tallied exactly once");
    assert_eq!(total(&fe, &handle), 2, "seq 0 + seq 2 delivered");
    assert_eq!(
        loss.tuples_dropped, 0,
        "each relay incarnation balances at the frontend"
    );
    // The harness-level ground truth: everything the agent emitted is
    // either delivered or explicitly surfaced as stale loss.
    assert_eq!(4, loss.tuples_delivered + stats.tuples_stale);
}

/// A relay crash destroys the open (absorbed but unflushed) window; the
/// residue reports exactly those tuples so a harness can fold them into
/// `crash_lost`, and the post-restart stream balances at the frontend.
#[test]
fn crash_residue_accounts_the_open_window() {
    let (mut fe, handle) = frontend_with_query();
    let core = RelayCore::new(relay_info(0));
    core.sync(&fe.installed());
    let agent = fresh_agent(&fe, 0);

    for _ in 0..3 {
        invoke(&agent, MS, "a", 1);
    }
    core.absorb(flush_one(&agent, MS));
    assert_eq!(core.buffered_tuples(), 3);
    let old_incarnation = core.incarnation();
    let residue = core.restart();
    assert_eq!(residue.window_tuples, 3, "the open window died");
    assert_ne!(core.incarnation(), old_incarnation);
    core.sync(&fe.installed());

    for _ in 0..2 {
        invoke(&agent, 2 * MS, "b", 1);
    }
    core.absorb(flush_one(&agent, 2 * MS));
    for r in core.flush(3 * MS) {
        assert_eq!(r.seq, 0, "fresh incarnation restarts the seq space");
        fe.accept(r);
    }

    let loss = fe.results(&handle).loss();
    assert_eq!(total(&fe, &handle), 2);
    assert_eq!(loss.tuples_dropped, 0, "the new incarnation balances");
    // Ground truth: 5 emitted = 2 delivered + 3 crash-lost residue.
    assert_eq!(5, loss.tuples_delivered + residue.window_tuples);
}

/// Governor `Throttled` notices from below are forwarded one per
/// upstream report (the envelope has one slot); extras ride out on
/// row-less frames, each consuming an upstream seq.
#[test]
fn throttles_forward_one_per_upstream_report() {
    let (fe, _handle) = frontend_with_query();
    let core = RelayCore::new(relay_info(0));
    core.sync(&fe.installed());

    let mut frames = Vec::new();
    for slot in 0..2 {
        let agent = fresh_agent(&fe, slot);
        invoke(&agent, MS, "a", 1);
        let mut frame = flush_one(&agent, MS);
        frame.throttled = Some(pivot_core::Throttled {
            query: frame.query,
            reason: pivot_core::ThrottleReason::Tuples,
            stats: pivot_core::ThrottleStats {
                tuples: 5,
                ops: 25,
                bytes: 60,
                trips: 1 + slot as u32,
            },
        });
        frames.push(frame);
    }
    for f in frames {
        core.absorb(f);
    }
    let out = core.flush(2 * MS);
    assert_eq!(out.len(), 2, "two throttles need two envelopes");
    assert!(out.iter().all(|r| r.throttled.is_some()));
    assert_eq!(out[0].tuples, 2, "head report carries the window");
    assert_eq!(out[1].tuples, 0, "extra is row-less");
    assert_eq!((out[0].seq, out[1].seq), (0, 1));
}

/// Grouped rows racing ahead of the Install on a link still merge
/// correctly: the spec-less fallback folds identically because every
/// aggregate's init state is the merge identity.
#[test]
fn specless_merge_matches_spec_merge() {
    let (fe, _) = frontend_with_query();
    let agent = fresh_agent(&fe, 0);
    for (k, v) in [("a", 3), ("b", 4), ("a", 5)] {
        invoke(&agent, MS, k, v);
    }
    let frame = flush_one(&agent, MS);

    let with_spec = RelayCore::new(relay_info(0));
    with_spec.sync(&fe.installed());
    with_spec.absorb(frame.clone());
    let without_spec = RelayCore::new(relay_info(1));
    without_spec.absorb(frame);

    let mut a = with_spec.flush(2 * MS);
    let mut b = without_spec.flush(2 * MS);
    let (a, b) = (a.remove(0), b.remove(0));
    assert_eq!(a.rows, b.rows, "identical merged groups either way");
    assert_eq!(a.tuples, b.tuples);
}

/// Streaming (raw-row) queries are coalesced, not merged: every row
/// survives the hop, batched into one frame.
#[test]
fn streaming_rows_coalesce_without_merging() {
    let mut fe = Frontend::new();
    fe.define("Exec", ["k", "v"]);
    let handle = fe
        .install_named("QS", "From e In Exec Select e.k, e.v")
        .expect("streaming query installs");
    let core = RelayCore::new(relay_info(0));
    core.sync(&fe.installed());

    for slot in 0..3 {
        let agent = fresh_agent(&fe, slot);
        invoke(&agent, MS, "k", slot as i64);
        core.absorb(flush_one(&agent, MS));
    }
    let out = core.flush(2 * MS);
    assert_eq!(out.len(), 1, "three raw streams, one coalesced frame");
    assert_eq!(out[0].tuples, 3);
    fe.accept(out.into_iter().next().expect("one frame"));
    assert_eq!(fe.results(&handle).len(), 3, "every raw row survives");
}

/// Retro frames pass through verbatim, but exact (source, ring seq)
/// repeats are suppressed at the hop — and the suppression ledger
/// survives a relay restart, so a late transport duplicate of a frame
/// that died in the crash residue stays refused instead of resurrecting
/// events already counted as lost.
#[test]
fn retro_duplicate_suppressed_across_restart() {
    use pivot_core::{RetroReport, TriggerKind};

    fn retro(seq: u64, events: usize) -> RetroReport {
        RetroReport {
            host: "host-0".into(),
            procid: 7,
            procname: "worker".into(),
            incarnation: 1,
            time: MS,
            seq,
            query: pivot_baggage::QueryId(1),
            kind: TriggerKind::Fault,
            request: 42,
            events: (0..events)
                .map(|i| pivot_core::RetroEvent {
                    tracepoint: Value::str("Exec"),
                    time: MS + i as u64,
                    request: 42,
                    names: Arc::new(Vec::new()),
                    values: Vec::new(),
                })
                .collect(),
            recorded_cum: events as u64,
            sampled_out_cum: 0,
            shed_cum: 0,
        }
    }

    let core = RelayCore::new(relay_info(0));
    core.absorb_retro(retro(0, 3));
    core.absorb_retro(retro(0, 3)); // transport duplicate
    assert_eq!(core.stats().retro_in, 1);
    assert_eq!(core.stats().retro_duplicate, 1);
    assert_eq!(core.buffered_retro_events(), 3);

    // The queued frame dies with the relay: its events land on the
    // crash-residue books.
    let residue = core.restart();
    assert_eq!(residue.retro_events, 3);

    // A straggler duplicate of the dead frame arrives post-restart. It
    // must stay refused — delivering it would double-count the events.
    core.absorb_retro(retro(0, 3));
    assert_eq!(core.stats().retro_duplicate, 2);
    assert_eq!(core.buffered_retro_events(), 0);
    assert!(core.flush_retro().is_empty());

    // Fresh seqs from the same source still flow.
    core.absorb_retro(retro(1, 2));
    let out = core.flush_retro();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].seq, 1);
}
