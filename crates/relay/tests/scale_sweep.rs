//! The 1000-agent simulated sweep: a two-hop relay tree (1000 agents →
//! 10 leaf relays → 1 root relay → frontend) with seeded chaos on every
//! link, relay crashes mid-window at both tiers, and governor-style shed
//! at the leaves. The acceptance bar is the *exact* ground-truth loss
//! identity across the whole run:
//!
//! ```text
//! Σ agent emitted == fe delivered + Σ link dropped + Σ relay stale
//!                  + Σ crash residue + Σ agent shed
//! ```
//!
//! Every tuple an agent ever emitted lands in exactly one bucket; nothing
//! leaks through the tree even when relays die with open windows and the
//! fault injector drops, duplicates, delays, and partitions around them.
//!
//! Crash discipline: before restarting a relay we quiesce the links
//! *below* it (release held frames, pull them into the window) so a
//! chaos-duplicated frame cannot have one copy die in the window while
//! the other is re-accepted by the next incarnation as a fresh baseline —
//! which would count the same tuples in both `residue` and `delivered`.
//! Frames held *above* the crashed relay are safe without quiescing:
//! they carry the old incarnation, so the upstream keeps deduplicating
//! them against the old source state. DESIGN.md §5h spells this out.

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_chaos::{ChaosBus, FaultConfig, FaultPlan};
use pivot_core::{Agent, Bus, Frontend, LocalBus, ProcessInfo, QueryHandle, TriggerKind};
use pivot_model::Value;
use pivot_relay::{FanIn, Relay};

const MS: u64 = 1_000_000;
const LEAVES: usize = 10;
const AGENTS_PER_LEAF: usize = 100;
const ROUNDS: u64 = 10;
/// Rounds step the clock past the injector's largest delay (320ms) so
/// held frames actually release mid-run and reorder, not just at settle.
const ROUND_NS: u64 = 400 * MS;

const GROUPED: &str = "From e In Exec GroupBy e.k Select e.k, SUM(e.v)";
const STREAMING: &str = "From e In Exec Select e.k, e.v";

/// Leaves whose agents run with hindsight rings armed: the shed leaf
/// (0) and both leaf-crash victims (2 and 6), so retro frames are in
/// flight through every adversity the sweep stages.
const RETRO_LEAVES: [usize; 3] = [0, 2, 6];
/// Tiny rings so steady recording wraps between staggered triggers and
/// the `sampled_out` term is exercised at scale.
const RETRO_RING_CAP: usize = 8;

type LeafRelay = Relay<ChaosBus<LocalBus>>;
type Tree = Relay<FanIn<ChaosBus<LeafRelay>>>;

fn agent_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("host-{slot}"),
        procid: slot,
        procname: "worker".into(),
    }
}

fn relay_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("relay-{slot}"),
        procid: slot,
        procname: "pivot-relay".into(),
    }
}

/// Builds the two-hop tree. Each leaf has chaos on its agent-facing link
/// and on its upstream link, every link drawing an independent schedule
/// from the one root seed via `FaultPlan::derive`.
fn build_tree(seed: u64, agents: &mut Vec<Arc<Agent>>) -> Tree {
    let root_plan = FaultPlan::new(seed, FaultConfig::for_seed(seed));
    let mut leaves = Vec::new();
    for li in 0..LEAVES {
        let mut bus = LocalBus::new();
        for ai in 0..AGENTS_PER_LEAF {
            let slot = (li * AGENTS_PER_LEAF + ai) as u64;
            let agent = Arc::new(Agent::new(agent_info(slot)));
            agents.push(Arc::clone(&agent));
            bus.register(agent);
        }
        let below = ChaosBus::new(bus, root_plan.derive(li as u64));
        let leaf = Relay::new(below, relay_info(li as u64));
        leaves.push(ChaosBus::new(leaf, root_plan.derive(1_000 + li as u64)));
    }
    Relay::new(FanIn::new(leaves), relay_info(99))
}

fn invoke(agent: &Agent, now: u64, key: &str, v: i64) {
    let mut bag = Baggage::new();
    agent.invoke(
        "Exec",
        &mut bag,
        now,
        &[("k", Value::str(key)), ("v", Value::I64(v))],
    );
}

/// The same five events as one `invoke_batch` call — half the fleet runs
/// batched so the sweep's loss identity covers batch flushing too.
fn invoke_round_batched(agent: &Agent, now: u64, gkey: &str) {
    let mut bag = Baggage::new();
    let events: Vec<[(&str, Value); 2]> = (0..5)
        .map(|j| {
            let k = if j < 2 { gkey } else { "s" };
            [("k", Value::str(k)), ("v", Value::I64(1))]
        })
        .collect();
    let ev: Vec<(u64, &[(&str, Value)])> = events.iter().map(|e| (now, e.as_slice())).collect();
    agent.invoke_batch("Exec", &mut bag, &ev);
}

/// One full pull through the tree into the frontend; returns how many
/// frames the frontend actually received (the fan-in numerator).
fn drain_into(root: &Tree, fe: &mut Frontend, t: u64) -> u64 {
    let reports = root.drain_reports(t);
    let n = reports.len() as u64;
    for r in reports {
        fe.accept(r);
    }
    for r in root.drain_retro(t) {
        fe.accept_retro(r);
    }
    n
}

/// Marks every held frame on every link due immediately (both tiers).
fn release_all(root: &Tree) {
    for child in root.inner().children() {
        child.release_pending();
        child.inner().inner().release_pending();
    }
}

/// Quiesce-then-crash for a leaf: settle the agent-facing link into the
/// open window (and the retro queue), then kill the relay. Returns the
/// (window tuples, retro events) destroyed.
fn crash_leaf(root: &Tree, li: usize, t: u64) -> (u64, u64) {
    let leaf = root.inner().children()[li].inner();
    leaf.inner().release_pending();
    leaf.pull(t);
    leaf.pull_retro(t);
    let residue = leaf.core().restart();
    (residue.window_tuples, residue.retro_events)
}

/// Quiesce-then-crash for the root: settle every leaf-facing link into
/// the root window (and the retro queue), then kill it.
fn crash_root(root: &Tree, t: u64) -> (u64, u64) {
    for child in root.inner().children() {
        child.release_pending();
    }
    root.pull(t);
    root.pull_retro(t);
    let residue = root.core().restart();
    (residue.window_tuples, residue.retro_events)
}

struct SweepOutcome {
    delivered: u64,
    dropped: u64,
    stale: u64,
    residue: u64,
    shed: u64,
    emitted: u64,
    frames_fe: u64,
    agent_frames: u64,
    /// The extended identity's hindsight terms, ground truth on the left
    /// (`recorded` from agent seals) and the buckets on the right.
    retro_recorded: u64,
    retro_delivered: u64,
    retro_dropped: u64,
    retro_sampled_out: u64,
    retro_shed: u64,
    retro_relay_shed: u64,
    retro_residue: u64,
}

fn run_sweep(seed: u64) -> SweepOutcome {
    let mut fe = Frontend::new();
    fe.define("Exec", ["k", "v"]);
    let gq: QueryHandle = fe.install_named("QG", GROUPED).expect("grouped installs");
    let sq: QueryHandle = fe
        .install_named("QS", STREAMING)
        .expect("streaming installs");

    let mut agents: Vec<Arc<Agent>> = Vec::with_capacity(LEAVES * AGENTS_PER_LEAF);
    let root = build_tree(seed, &mut agents);
    assert_eq!(agents.len(), 1_000, "the sweep is a 1000-agent run");

    // A tight row cap on leaf 0's agents forces real shed (the governor's
    // bounded-buffer family), so the identity's shed term is exercised.
    for agent in &agents[..AGENTS_PER_LEAF] {
        agent.set_row_cap(2);
    }

    // Hindsight rings on three leaves' worth of agents (shed leaf + both
    // leaf-crash victims), tiny so wraparound is routine.
    let retro_agents: Vec<&Arc<Agent>> = RETRO_LEAVES
        .iter()
        .flat_map(|&li| &agents[li * AGENTS_PER_LEAF..(li + 1) * AGENTS_PER_LEAF])
        .collect();
    for agent in &retro_agents {
        agent.set_retro(true);
        agent.set_retro_cap(RETRO_RING_CAP);
    }

    // Installs flow down through both chaos tiers. Commands are never
    // dropped, but each tier can hold them independently — release and
    // drain twice so a frame re-delayed at the lower tier still lands.
    let mut t = MS;
    for cmd in fe.drain_commands() {
        root.broadcast(&cmd);
    }
    let mut frames_fe = 0;
    for _ in 0..2 {
        release_all(&root);
        frames_fe += drain_into(&root, &mut fe, t);
        t += ROUND_NS;
    }
    for agent in &agents {
        assert!(
            agent.registry().has_query(gq.id),
            "install reached every agent"
        );
        assert!(agent.registry().has_query(sq.id));
    }

    let mut residue = 0u64;
    let mut retro_residue = 0u64;
    for round in 0..ROUNDS {
        for (i, agent) in agents.iter().enumerate() {
            let gkey = if i % 2 == 0 { "g0" } else { "g1" };
            // Both queries watch the same tracepoint, so every invoke
            // feeds both; v stays 1 so the grouped SUM equals the
            // delivered tuple count. Odd agents run the identical five
            // events per-call, even agents as one batched call — the
            // identity must hold with both execution paths in the fleet.
            if i % 2 == 0 {
                invoke_round_batched(agent, t, gkey);
            } else {
                for _ in 0..2 {
                    invoke(agent, t, gkey, 1);
                }
                for _ in 0..3 {
                    invoke(agent, t, "s", 1);
                }
            }
        }
        // Staggered fault-site triggers: each hindsight agent drains its
        // ring every third round, so retro frames are in flight at every
        // crash and across every partition window the schedule stages.
        for (ri, agent) in retro_agents.iter().enumerate() {
            if round % 3 == (ri % 3) as u64 {
                agent.trigger_retro(TriggerKind::Fault, 0, t);
            }
        }
        // Mid-window crashes at both tiers: the invokes above are pulled
        // into the victim's window (quiesce) and then destroyed with it —
        // retro frames included, so the hindsight residue term is real.
        if round == 3 {
            let (lost, retro_lost) = crash_leaf(&root, 2, t);
            assert!(lost > 0, "leaf crash destroyed an open window");
            assert!(retro_lost > 0, "leaf crash destroyed queued retro frames");
            residue += lost;
            retro_residue += retro_lost;
        }
        if round == 5 {
            let (lost, retro_lost) = crash_root(&root, t);
            assert!(lost > 0, "root crash destroyed an open window");
            residue += lost;
            retro_residue += retro_lost;
        }
        if round == 7 {
            let (lost, retro_lost) = crash_leaf(&root, 6, t);
            assert!(lost > 0, "second leaf crash destroyed an open window");
            residue += lost;
            retro_residue += retro_lost;
        }
        frames_fe += drain_into(&root, &mut fe, t);
        t += ROUND_NS;
    }

    // End-of-run convergence: stop injecting, release every held frame,
    // and pump until the tree is empty. Two passes move a frame released
    // at the lower tier through the upper one; the third is slack.
    for child in root.inner().children() {
        child.set_enabled(false);
        child.inner().inner().set_enabled(false);
    }
    for _ in 0..3 {
        release_all(&root);
        frames_fe += drain_into(&root, &mut fe, t);
        t += ROUND_NS;
    }
    for child in root.inner().children() {
        assert_eq!(child.pending(), (0, 0), "upper link fully settled");
        assert_eq!(
            child.inner().inner().pending(),
            (0, 0),
            "lower link fully settled"
        );
        assert_eq!(
            child.inner().core().buffered_tuples(),
            0,
            "leaf window flushed"
        );
    }
    assert_eq!(root.core().buffered_tuples(), 0, "root window flushed");

    let mut dropped = 0u64;
    let mut stale = root.core().stats().tuples_stale;
    let mut agent_frames = 0u64;
    let mut retro_dropped = 0u64;
    let mut retro_relay_shed = root.core().stats().retro_events_shed;
    for child in root.inner().children() {
        dropped += child.stats().tuples_dropped;
        dropped += child.inner().inner().stats().tuples_dropped;
        stale += child.inner().core().stats().tuples_stale;
        agent_frames += child.inner().core().stats().reports_in;
        retro_dropped += child.stats().retro_events_dropped;
        retro_dropped += child.inner().inner().stats().retro_events_dropped;
        retro_relay_shed += child.inner().core().stats().retro_events_shed;
    }

    // Graceful end-of-life for the hindsight rings: everything
    // deliverable drained above; sealing accounts the leftovers
    // (unclaimed ring events become `sampled_out`).
    let mut retro_recorded = 0u64;
    let mut retro_sampled_out = 0u64;
    let mut retro_shed = 0u64;
    for agent in &retro_agents {
        let rc = agent.retro_seal();
        retro_recorded += rc.recorded;
        retro_sampled_out += rc.sampled_out;
        retro_shed += rc.shed;
    }

    let loss_g = fe.results(&gq).loss();
    let loss_s = fe.results(&sq).loss();

    // Per-query spot checks: the grouped SUM over v=1 tuples equals the
    // delivered count, and every delivered streaming row is visible.
    let sum_g: i64 = fe
        .results(&gq)
        .rows()
        .iter()
        .map(|r| match r.values[1] {
            Value::I64(n) => n,
            ref v => panic!("SUM column is not an integer: {v:?}"),
        })
        .sum();
    assert_eq!(sum_g as u64, loss_g.tuples_delivered, "merged SUM is exact");
    assert_eq!(
        fe.results(&sq).len() as u64,
        loss_s.tuples_delivered,
        "every delivered raw row survives the hops"
    );

    SweepOutcome {
        delivered: loss_g.tuples_delivered + loss_s.tuples_delivered,
        dropped,
        stale,
        residue,
        shed: agents
            .iter()
            .map(|a| a.shed_for(gq.id) + a.shed_for(sq.id))
            .sum(),
        emitted: agents
            .iter()
            .map(|a| a.emitted_for(gq.id) + a.emitted_for(sq.id))
            .sum(),
        frames_fe,
        agent_frames,
        retro_recorded,
        retro_delivered: fe.retro_loss().events_delivered,
        retro_dropped,
        retro_sampled_out,
        retro_shed,
        retro_relay_shed,
        retro_residue,
    }
}

/// The headline acceptance test: three seeded 1000-agent runs, each
/// balancing the ground-truth identity exactly — through two relay hops,
/// per-link fault schedules, three mid-window relay crashes, and forced
/// shed — while the frontend sees at least 5× fewer frames than the
/// agents emitted.
#[test]
fn thousand_agent_sweep_balances_exactly() {
    let mut total_dropped = 0u64;
    let mut total_retro_dropped = 0u64;
    for seed in [0x51ee9, 0xb0b5, 0x7a11] {
        let o = run_sweep(seed);
        assert_eq!(
            o.emitted,
            o.delivered + o.dropped + o.stale + o.residue + o.shed,
            "seed {seed:#x}: emitted {} != delivered {} + dropped {} + stale {} \
             + residue {} + shed {}",
            o.emitted,
            o.delivered,
            o.dropped,
            o.stale,
            o.residue,
            o.shed,
        );
        // The extended hindsight identity through both relay hops: every
        // raw event recorded into any ring lands in exactly one bucket.
        assert_eq!(
            o.retro_recorded,
            o.retro_delivered
                + o.retro_dropped
                + o.retro_sampled_out
                + o.retro_shed
                + o.retro_relay_shed
                + o.retro_residue,
            "seed {seed:#x}: retro recorded {} != delivered {} + dropped {} \
             + sampled_out {} + shed {} + relay_shed {} + residue {}",
            o.retro_recorded,
            o.retro_delivered,
            o.retro_dropped,
            o.retro_sampled_out,
            o.retro_shed,
            o.retro_relay_shed,
            o.retro_residue,
        );
        assert!(o.residue > 0, "seed {seed:#x}: crashes hit open windows");
        assert!(o.shed > 0, "seed {seed:#x}: the shed term is exercised");
        assert!(
            o.retro_delivered > 0,
            "seed {seed:#x}: hindsight data reached the frontend"
        );
        assert!(
            o.retro_sampled_out > 0,
            "seed {seed:#x}: ring wraparound is exercised at scale"
        );
        assert!(
            o.retro_residue > 0,
            "seed {seed:#x}: relay crashes destroyed queued retro frames"
        );
        assert!(
            o.frames_fe * 5 <= o.agent_frames,
            "seed {seed:#x}: fan-in collapsed {} agent frames to {} at the frontend",
            o.agent_frames,
            o.frames_fe
        );
        total_dropped += o.dropped;
        total_retro_dropped += o.retro_dropped;
    }
    assert!(total_dropped > 0, "the sweep exercised real transport loss");
    assert!(
        total_retro_dropped > 0,
        "the sweep exercised real retro-frame transport loss"
    );
}
