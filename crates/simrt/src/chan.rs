//! Unbounded mpsc channels with async receive.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

struct ChanState<T> {
    queue: VecDeque<T>,
    waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Creates an unbounded channel.
///
/// Sends are synchronous (never block); receives are async. Dropping every
/// sender closes the channel, after which [`Receiver::recv`] returns
/// `None` once the queue drains.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Arc::new(Mutex::new(ChanState {
        queue: VecDeque::new(),
        waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: Arc::clone(&state),
        },
        Receiver { state },
    )
}

/// The sending half.
pub struct Sender<T> {
    state: Arc<Mutex<ChanState<T>>>,
}

impl<T> Sender<T> {
    /// Enqueues a message; returns `false` if the receiver is gone.
    pub fn send(&self, value: T) -> bool {
        let mut s = self.state.lock();
        if !s.receiver_alive {
            return false;
        }
        s.queue.push_back(value);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
        true
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.state.lock().senders += 1;
        Sender {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.lock();
        s.senders -= 1;
        if s.senders == 0 {
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }
    }
}

/// The receiving half.
pub struct Receiver<T> {
    state: Arc<Mutex<ChanState<T>>>,
}

impl<T> Receiver<T> {
    /// Receives the next message, or `None` when all senders are gone and
    /// the queue is empty.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.lock().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.receiver.state.lock();
        if let Some(v) = s.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRt;

    #[test]
    fn send_recv_in_order() {
        let rt = SimRt::new();
        let (tx, mut rx) = channel();
        rt.spawn(async move {
            for i in 0..5 {
                tx.send(i);
            }
        });
        let h = rt.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn recv_wakes_on_later_send() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let (tx, mut rx) = channel();
        rt.spawn({
            let clock = clock.clone();
            async move {
                clock.sleep_secs(3.0).await;
                tx.send(42u32);
            }
        });
        let h = rt.spawn({
            async move {
                let v = rx.recv().await;
                (v, clock.now())
            }
        });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some((Some(42), 3_000_000_000)));
    }

    #[test]
    fn drop_all_senders_closes() {
        let rt = SimRt::new();
        let (tx, mut rx) = channel::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        let h = rt.spawn(async move { rx.recv().await });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(None));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert!(!tx.send(1));
    }
}
