//! Virtual time and timers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// Virtual time in nanoseconds since simulation start.
pub type Nanos = u64;

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

pub(crate) struct TimerEntry {
    pub deadline: Nanos,
    pub seq: u64,
    pub waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &TimerEntry) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &TimerEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &TimerEntry) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

#[derive(Default)]
pub(crate) struct TimerState {
    pub heap: BinaryHeap<Reverse<TimerEntry>>,
    pub seq: u64,
}

/// A cloneable handle to the simulation clock.
///
/// All clones observe the same virtual time, which only advances inside
/// [`crate::SimRt::run_until`] when no task is runnable.
#[derive(Clone)]
pub struct Clock {
    pub(crate) now: Arc<AtomicU64>,
    pub(crate) timers: Arc<Mutex<TimerState>>,
}

impl Clock {
    pub(crate) fn new() -> Clock {
        Clock {
            now: Arc::new(AtomicU64::new(0)),
            timers: Arc::new(Mutex::new(TimerState::default())),
        }
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::Relaxed)
    }

    /// Returns the current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now() as f64 / NANOS_PER_SEC as f64
    }

    /// Sleeps until the absolute virtual instant `deadline`.
    pub fn sleep_until(&self, deadline: Nanos) -> Sleep {
        Sleep {
            clock: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Sleeps for `d` nanoseconds of virtual time.
    pub fn sleep(&self, d: Nanos) -> Sleep {
        self.sleep_until(self.now().saturating_add(d))
    }

    /// Sleeps for `secs` seconds of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn sleep_secs(&self, secs: f64) -> Sleep {
        assert!(secs.is_finite() && secs >= 0.0, "bad sleep duration");
        self.sleep((secs * NANOS_PER_SEC as f64) as Nanos)
    }

    /// Converts seconds to nanoseconds.
    pub fn secs(secs: f64) -> Nanos {
        (secs * NANOS_PER_SEC as f64) as Nanos
    }

    /// Sleeps for `base` plus a deterministic jitter in `[0, spread]`
    /// derived from `seed` (and nothing else — not the current time, not
    /// prior draws), so simulated retry/report schedules desynchronize
    /// across tasks while every run stays bit-reproducible. Callers vary
    /// `seed` per sleep (e.g. `seed = task_id ^ attempt`).
    pub fn sleep_jittered(&self, base: Nanos, spread: Nanos, seed: u64) -> Sleep {
        let jitter = match spread {
            0 => 0,
            s => crate::util::mix64(seed) % (s + 1),
        };
        self.sleep(base.saturating_add(jitter))
    }
}

/// The future returned by [`Clock::sleep`].
pub struct Sleep {
    clock: Clock,
    deadline: Nanos,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now() >= self.deadline {
            return Poll::Ready(());
        }
        // Re-register on every poll: a spurious wake with a fresh waker
        // must not strand the timer.
        let deadline = self.deadline;
        self.registered = true;
        let mut timers = self.clock.timers.lock();
        timers.seq += 1;
        let entry = TimerEntry {
            deadline,
            seq: timers.seq,
            waker: cx.waker().clone(),
        };
        timers.heap.push(Reverse(entry));
        Poll::Pending
    }
}
