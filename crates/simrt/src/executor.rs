//! The single-threaded deterministic executor.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::clock::{Clock, Nanos};

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Global diagnostics: total task polls across all runtimes (relaxed).
pub static POLLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Global diagnostics: total timer firings across all runtimes (relaxed).
pub static TIMER_FIRES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Global diagnostics: last observed virtual now (nanoseconds).
pub static LAST_NOW: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[derive(Default)]
struct ReadyState {
    queue: VecDeque<u64>,
    queued: std::collections::HashSet<u64>,
}

/// The wake queue. Wakes are **deduplicated**: a task woken many times
/// before it runs is polled once. Without this, k same-deadline timer
/// entries cause k polls which re-register k fresh entries — a
/// self-amplifying timer storm.
#[derive(Default)]
struct ReadyQueue {
    state: Mutex<ReadyState>,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        let mut s = self.state.lock();
        if s.queued.insert(id) {
            s.queue.push_back(id);
        }
    }

    fn pop(&self) -> Option<u64> {
        let mut s = self.state.lock();
        let id = s.queue.pop_front()?;
        s.queued.remove(&id);
        Some(id)
    }
}

struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// The discrete-event executor.
///
/// Single-threaded and deterministic: tasks run in wake order, ties between
/// simultaneous timers break by registration order, and virtual time only
/// advances when no task is runnable.
pub struct SimRt {
    clock: Clock,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<HashMap<u64, BoxedFuture>>,
    next_task: std::cell::Cell<u64>,
}

impl Default for SimRt {
    fn default() -> SimRt {
        SimRt::new()
    }
}

impl SimRt {
    /// Creates a runtime with the clock at zero.
    pub fn new() -> SimRt {
        SimRt {
            clock: Clock::new(),
            ready: Arc::new(ReadyQueue::default()),
            tasks: RefCell::new(HashMap::new()),
            next_task: std::cell::Cell::new(1),
        }
    }

    /// Returns a handle to the virtual clock.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Spawns a task, returning a handle that can be awaited (from another
    /// task) or queried after the run.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let slot = Arc::new(Mutex::new(JoinSlot {
            value: None,
            waker: None,
        }));
        let slot2 = Arc::clone(&slot);
        let id = self.next_task.get();
        self.next_task.set(id + 1);
        let wrapped = Box::pin(async move {
            let value = fut.await;
            let mut s = slot2.lock();
            s.value = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        self.tasks.borrow_mut().insert(id, wrapped);
        self.ready.push(id);
        JoinHandle { slot }
    }

    /// Runs until no task is runnable and no timer is pending.
    ///
    /// Returns the final virtual time.
    pub fn run_until_idle(&self) -> Nanos {
        self.run_until(Nanos::MAX)
    }

    /// Runs until idle or until virtual time would pass `deadline`; the
    /// clock is left at `min(deadline, idle time)`.
    pub fn run_until(&self, deadline: Nanos) -> Nanos {
        loop {
            // Drain every runnable task.
            while let Some(id) = self.ready.pop() {
                let Some(mut task) = self.tasks.borrow_mut().remove(&id) else {
                    continue; // completed task woken late
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    ready: Arc::clone(&self.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                POLLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if task.as_mut().poll(&mut cx).is_pending() {
                    self.tasks.borrow_mut().insert(id, task);
                }
            }
            // Advance to the next timer.
            let mut timers = self.clock.timers.lock();
            let Some(next) = timers.heap.peek() else {
                break;
            };
            let t = next.0.deadline;
            if t > deadline {
                break;
            }
            self.clock.now.store(t, Ordering::Relaxed);
            LAST_NOW.store(t, Ordering::Relaxed);
            while let Some(e) = timers.heap.peek() {
                if e.0.deadline > t {
                    break;
                }
                let entry = timers.heap.pop().expect("peek succeeded").0;
                TIMER_FIRES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                entry.waker.wake();
            }
            drop(timers);
        }
        if deadline != Nanos::MAX && self.clock.now.load(Ordering::Relaxed) < deadline {
            self.clock.now.store(deadline, Ordering::Relaxed);
        }
        self.clock.now.load(Ordering::Relaxed)
    }

    /// Runs for `secs` of virtual time beyond the current instant.
    pub fn run_for_secs(&self, secs: f64) -> Nanos {
        let d = Clock::secs(secs);
        let deadline = self.clock.now().saturating_add(d);
        self.run_until(deadline)
    }

    /// Number of live (not yet completed) tasks.
    pub fn live_tasks(&self) -> usize {
        self.tasks.borrow().len()
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

/// A handle to a spawned task's result.
pub struct JoinHandle<T> {
    slot: Arc<Mutex<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Returns the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.slot.lock().value.take()
    }

    /// Returns `true` once the task has completed.
    pub fn is_done(&self) -> bool {
        self.slot.lock().value.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.lock();
        match slot.value.take() {
            Some(v) => Poll::Ready(v),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_run_and_complete() {
        let rt = SimRt::new();
        let h = rt.spawn(async { 21 * 2 });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(42));
        assert_eq!(rt.live_tasks(), 0);
    }

    #[test]
    fn virtual_time_advances_through_sleeps() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let c = clock.clone();
        let h = rt.spawn(async move {
            c.sleep_secs(2.5).await;
            c.now()
        });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(2_500_000_000));
        assert_eq!(clock.now(), 2_500_000_000);
    }

    #[test]
    fn concurrent_sleeps_interleave_deterministically() {
        let rt = SimRt::new();
        let order = std::rc::Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 2.0), ("a", 1.0), ("c", 3.0), ("a2", 1.0)] {
            let clock = rt.clock();
            let order = std::rc::Rc::clone(&order);
            rt.spawn(async move {
                clock.sleep_secs(delay).await;
                order.borrow_mut().push(name);
            });
        }
        rt.run_until_idle();
        // Same deadline ties resolve in spawn order.
        assert_eq!(*order.borrow(), vec!["a", "a2", "b", "c"]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let c = clock.clone();
        rt.spawn(async move {
            loop {
                c.sleep_secs(1.0).await;
            }
        });
        rt.run_until(Clock::secs(5.5));
        assert_eq!(clock.now(), 5_500_000_000);
        assert_eq!(rt.live_tasks(), 1);
        // Resume later.
        rt.run_until(Clock::secs(10.0));
        assert_eq!(clock.now(), 10_000_000_000);
    }

    #[test]
    fn join_handles_are_awaitable() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let inner = rt.spawn({
            async move {
                clock.sleep_secs(1.0).await;
                7
            }
        });
        let outer = rt.spawn(async move { inner.await + 1 });
        rt.run_until_idle();
        assert_eq!(outer.try_take(), Some(8));
    }

    #[test]
    fn nested_spawns_do_not_deadlock() {
        let rt = SimRt::new();
        // Cannot capture &rt inside a task (lifetime); use a channel to
        // ask the outside to verify liveness instead.
        let clock = rt.clock();
        let h = rt.spawn(async move {
            clock.sleep_secs(0.5).await;
            99
        });
        rt.run_for_secs(1.0);
        assert_eq!(h.try_take(), Some(99));
    }
}
