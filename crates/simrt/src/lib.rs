//! A deterministic discrete-event simulation runtime.
//!
//! `pivot-simrt` is the substrate the simulated Hadoop cluster runs on
//! (see DESIGN.md): a single-threaded async executor over **virtual time**.
//! Tasks are ordinary Rust futures; awaiting [`Clock::sleep`] advances the
//! event clock instead of blocking, so a simulated minute of cluster load
//! executes in milliseconds and every run is bit-reproducible.
//!
//! Components:
//!
//! - [`SimRt`] — the executor: spawn tasks, run until idle or a virtual
//!   deadline.
//! - [`Clock`] — a cloneable handle for `now()` / `sleep()` /
//!   `sleep_until()`.
//! - [`channel`] — unbounded mpsc channels with async receive (the message
//!   fabric for simulated RPC).
//! - [`FifoResource`] — a rate-limited FIFO server modelling disks and
//!   network links; contention, queueing delay, and limplock emerge from
//!   `acquire` latencies.
//! - [`Counter`] — time-series samplers for throughput plots.
//!
//! # Examples
//!
//! ```
//! use pivot_simrt::SimRt;
//!
//! let rt = SimRt::new();
//! let clock = rt.clock();
//! let (tx, mut rx) = pivot_simrt::channel();
//! rt.spawn({
//!     let clock = clock.clone();
//!     async move {
//!         clock.sleep_secs(1.0).await;
//!         tx.send(clock.now());
//!     }
//! });
//! rt.spawn(async move {
//!     let t = rx.recv().await.unwrap();
//!     assert_eq!(t, 1_000_000_000);
//! });
//! rt.run_until_idle();
//! assert_eq!(clock.now(), 1_000_000_000);
//! ```

mod chan;
mod clock;
mod executor;
mod metrics;
mod resource;
mod util;

pub use chan::{channel, Receiver, Sender};
pub use clock::{Clock, Nanos, NANOS_PER_SEC};
pub use executor::{JoinHandle, SimRt};
pub use metrics::{Counter, Gauge};
pub use resource::FifoResource;
pub use util::{join2, join_all, mix64};

/// Diagnostics: total task polls across all runtimes in this process.
pub fn diag_polls() -> u64 {
    executor::POLLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Diagnostics: total timer firings.
pub fn diag_timer_fires() -> u64 {
    executor::TIMER_FIRES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Diagnostics: last virtual time a runtime advanced to (nanoseconds).
pub fn diag_last_now() -> u64 {
    executor::LAST_NOW.load(std::sync::atomic::Ordering::Relaxed)
}

/// Diagnostics: count and last culprit of sub-microsecond acquires.
pub static TINY_ACQUIRES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TINY_NAME: parking_lot::Mutex<String> = parking_lot::Mutex::new(String::new());

// Called from the tiny-acquire check in `resource.rs` on every acquire
// whose service time falls below one microsecond.
pub(crate) fn diag_record_tiny(name: &str, amount: f64) {
    TINY_ACQUIRES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut n = TINY_NAME.lock();
    if n.is_empty()
        || TINY_ACQUIRES
            .load(std::sync::atomic::Ordering::Relaxed)
            .is_multiple_of(100_000)
    {
        *n = format!("{name} amount={amount}");
    }
}

/// Diagnostics: describes the most recent tiny acquire.
pub fn diag_tiny() -> (u64, String) {
    (
        TINY_ACQUIRES.load(std::sync::atomic::Ordering::Relaxed),
        TINY_NAME.lock().clone(),
    )
}
