//! Time-series samplers for the figure harnesses.

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::{Clock, Nanos, NANOS_PER_SEC};

/// An event counter that remembers when increments happened, so the
/// harness can plot per-interval rates (e.g. MB/s per host).
#[derive(Clone)]
pub struct Counter {
    clock: Clock,
    samples: Rc<RefCell<Vec<(Nanos, f64)>>>,
}

impl Counter {
    /// Creates a counter bound to `clock`.
    pub fn new(clock: Clock) -> Counter {
        Counter {
            clock,
            samples: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Records `amount` at the current virtual time.
    pub fn add(&self, amount: f64) {
        self.samples.borrow_mut().push((self.clock.now(), amount));
    }

    /// Sums all recorded amounts.
    pub fn total(&self) -> f64 {
        self.samples.borrow().iter().map(|(_, v)| v).sum()
    }

    /// Buckets the samples into windows of `window_secs`, returning the
    /// per-window sums from time zero through the last sample.
    pub fn buckets(&self, window_secs: f64) -> Vec<f64> {
        let w = (window_secs * NANOS_PER_SEC as f64) as Nanos;
        let samples = self.samples.borrow();
        let mut out: Vec<f64> = Vec::new();
        for (t, v) in samples.iter() {
            let idx = (t / w.max(1)) as usize;
            if out.len() <= idx {
                out.resize(idx + 1, 0.0);
            }
            out[idx] += v;
        }
        out
    }

    /// Per-window *rates* (sum / window length).
    pub fn rates(&self, window_secs: f64) -> Vec<f64> {
        self.buckets(window_secs)
            .into_iter()
            .map(|v| v / window_secs)
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }
}

/// A last-value gauge with history.
#[derive(Clone)]
pub struct Gauge {
    clock: Clock,
    samples: Rc<RefCell<Vec<(Nanos, f64)>>>,
}

impl Gauge {
    /// Creates a gauge bound to `clock`.
    pub fn new(clock: Clock) -> Gauge {
        Gauge {
            clock,
            samples: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Records the current value.
    pub fn set(&self, value: f64) {
        self.samples.borrow_mut().push((self.clock.now(), value));
    }

    /// Returns the most recent value.
    pub fn last(&self) -> Option<f64> {
        self.samples.borrow().last().map(|(_, v)| *v)
    }

    /// Returns the full history.
    pub fn history(&self) -> Vec<(Nanos, f64)> {
        self.samples.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRt;

    #[test]
    fn buckets_and_rates() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let c = Counter::new(clock.clone());
        let c2 = c.clone();
        rt.spawn(async move {
            c2.add(10.0); // t = 0
            clock.sleep_secs(0.5).await;
            c2.add(10.0); // t = 0.5 (bucket 0)
            clock.sleep_secs(1.0).await;
            c2.add(30.0); // t = 1.5 (bucket 1)
            clock.sleep_secs(2.0).await;
            c2.add(5.0); // t = 3.5 (bucket 3)
        });
        rt.run_until_idle();
        assert_eq!(c.buckets(1.0), vec![20.0, 30.0, 0.0, 5.0]);
        assert_eq!(c.rates(2.0), vec![25.0, 2.5]);
        assert_eq!(c.total(), 55.0);
    }

    #[test]
    fn gauge_history() {
        let rt = SimRt::new();
        let g = Gauge::new(rt.clock());
        g.set(1.0);
        g.set(2.0);
        assert_eq!(g.last(), Some(2.0));
        assert_eq!(g.history().len(), 2);
    }
}
