//! Rate-limited FIFO resources (disks, network links).

use std::cell::Cell;
use std::rc::Rc;

use crate::clock::{Clock, Nanos, NANOS_PER_SEC};

/// A FIFO server with a service rate, modelling a disk or a network link.
///
/// `acquire(bytes)` occupies the server for `bytes / rate` seconds starting
/// when the server frees up; the awaiting task resumes once its transfer
/// completes. Queueing delay, saturation, and limplock (via
/// [`FifoResource::set_rate`]) emerge naturally.
///
/// Clone the handle freely; all clones share the same queue.
#[derive(Clone)]
pub struct FifoResource {
    clock: Clock,
    inner: Rc<Inner>,
}

struct Inner {
    name: String,
    rate: Cell<f64>,
    busy_until: Cell<Nanos>,
    served_bytes: Cell<f64>,
    served_ops: Cell<u64>,
}

impl FifoResource {
    /// Creates a resource serving `rate` bytes (or units) per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn new(clock: Clock, name: impl Into<String>, rate: f64) -> FifoResource {
        assert!(rate > 0.0, "resource rate must be positive");
        FifoResource {
            clock,
            inner: Rc::new(Inner {
                name: name.into(),
                rate: Cell::new(rate),
                busy_until: Cell::new(0),
                served_bytes: Cell::new(0.0),
                served_ops: Cell::new(0),
            }),
        }
    }

    /// Returns the resource name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Returns the current service rate (units per second).
    pub fn rate(&self) -> f64 {
        self.inner.rate.get()
    }

    /// Changes the service rate (e.g. the paper's faulty-cable limplock:
    /// a 1 Gbit NIC downgraded to 100 Mbit).
    pub fn set_rate(&self, rate: f64) {
        assert!(rate > 0.0, "resource rate must be positive");
        self.inner.rate.set(rate);
    }

    /// Serves `amount` units through the FIFO queue, sleeping until the
    /// transfer completes. Returns the total latency (queueing + service)
    /// in nanoseconds.
    pub async fn acquire(&self, amount: f64) -> Nanos {
        let raw_service = amount / self.inner.rate.get();
        if raw_service < 1e-6 {
            crate::diag_record_tiny(&self.inner.name, amount);
        }
        let now = self.clock.now();
        let start = self.inner.busy_until.get().max(now);
        let service = (raw_service * NANOS_PER_SEC as f64) as Nanos;
        let done = start.saturating_add(service.max(1));
        self.inner.busy_until.set(done);
        self.inner
            .served_bytes
            .set(self.inner.served_bytes.get() + amount);
        self.inner.served_ops.set(self.inner.served_ops.get() + 1);
        self.clock.sleep_until(done).await;
        done - now
    }

    /// Returns the instantaneous queueing delay a new arrival would see.
    pub fn backlog(&self) -> Nanos {
        self.inner.busy_until.get().saturating_sub(self.clock.now())
    }

    /// Total units served so far.
    pub fn served(&self) -> f64 {
        self.inner.served_bytes.get()
    }

    /// Total operations served so far.
    pub fn served_ops(&self) -> u64 {
        self.inner.served_ops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRt;

    #[test]
    fn service_time_follows_rate() {
        let rt = SimRt::new();
        let disk = FifoResource::new(rt.clock(), "disk", 100.0);
        let h = rt.spawn(async move { disk.acquire(50.0).await });
        rt.run_until_idle();
        // 50 units at 100/s = 0.5 s.
        assert_eq!(h.try_take(), Some(500_000_000));
    }

    #[test]
    fn fifo_queueing_adds_delay() {
        let rt = SimRt::new();
        let disk = FifoResource::new(rt.clock(), "disk", 100.0);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let disk = disk.clone();
            handles.push(rt.spawn(async move { disk.acquire(100.0).await }));
        }
        rt.run_until_idle();
        let lats: Vec<u64> = handles.iter().map(|h| h.try_take().unwrap()).collect();
        // Three 1-second jobs arriving together: 1 s, 2 s, 3 s.
        assert_eq!(lats, vec![1_000_000_000, 2_000_000_000, 3_000_000_000]);
        assert_eq!(disk.served(), 300.0);
        assert_eq!(disk.served_ops(), 3);
    }

    #[test]
    fn rate_degradation_slows_service() {
        let rt = SimRt::new();
        let nic = FifoResource::new(rt.clock(), "nic", 1000.0);
        nic.set_rate(100.0);
        let h = rt.spawn(async move { nic.acquire(100.0).await });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(1_000_000_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let rt = SimRt::new();
        let _ = FifoResource::new(rt.clock(), "x", 0.0);
    }
}
