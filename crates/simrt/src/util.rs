//! Future combinators and deterministic scheduling helpers for the
//! single-threaded runtime.

/// SplitMix64 finalizer: a stateless pseudo-random function over `u64`.
///
/// This is the canonical decision hash for deterministic fault schedules
/// (`pivot-chaos`) and jittered timers: unlike a stateful RNG, the output
/// for a given input never depends on how many other decisions were drawn
/// before it, so schedules stay byte-identical no matter how concurrent
/// activity interleaves.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Awaits two futures concurrently, returning both outputs.
pub fn join2<A: Future, B: Future>(a: A, b: B) -> Join2<A, B> {
    Join2 {
        a: MaybeDone::Pending(a),
        b: MaybeDone::Pending(b),
    }
}

/// Awaits every future in `futs` concurrently, returning outputs in order.
pub fn join_all<F: Future>(futs: Vec<F>) -> JoinAll<F> {
    JoinAll {
        futs: futs.into_iter().map(MaybeDone::Pending).collect(),
    }
}

enum MaybeDone<F: Future> {
    Pending(F),
    Done(Option<F::Output>),
}

impl<F: Future> MaybeDone<F> {
    /// # Safety contract
    ///
    /// Callers must only invoke this through a pinned owner that never
    /// moves the contained future (upheld by `Join2`/`JoinAll`, which are
    /// only accessed via `Pin<&mut Self>`).
    fn poll_inner(&mut self, cx: &mut Context<'_>) -> bool {
        match self {
            MaybeDone::Pending(f) => {
                // SAFETY: `self` is reached exclusively through
                // `Pin<&mut Join2/JoinAll>` and the futures are never moved
                // out until completion, so pinning is structurally upheld.
                let pinned = unsafe { Pin::new_unchecked(f) };
                match pinned.poll(cx) {
                    Poll::Ready(v) => {
                        *self = MaybeDone::Done(Some(v));
                        true
                    }
                    Poll::Pending => false,
                }
            }
            MaybeDone::Done(_) => true,
        }
    }

    fn take(&mut self) -> F::Output {
        match self {
            MaybeDone::Done(v) => v.take().expect("output taken twice"),
            MaybeDone::Pending(_) => unreachable!("future not done"),
        }
    }
}

/// Future returned by [`join2`].
pub struct Join2<A: Future, B: Future> {
    a: MaybeDone<A>,
    b: MaybeDone<B>,
}

impl<A: Future, B: Future> Future for Join2<A, B> {
    type Output = (A::Output, B::Output);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<(A::Output, B::Output)> {
        // SAFETY: we never move `a`/`b` out of the pinned struct until both
        // are complete (see MaybeDone::poll_inner contract).
        let this = unsafe { self.get_unchecked_mut() };
        let a_done = this.a.poll_inner(cx);
        let b_done = this.b.poll_inner(cx);
        if a_done && b_done {
            Poll::Ready((this.a.take(), this.b.take()))
        } else {
            Poll::Pending
        }
    }
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    futs: Vec<MaybeDone<F>>,
}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<F::Output>> {
        // SAFETY: elements are pinned transitively and never moved until
        // all are complete; the Vec is not reallocated after construction.
        let this = unsafe { self.get_unchecked_mut() };
        let mut all = true;
        for f in &mut this.futs {
            all &= f.poll_inner(cx);
        }
        if all {
            Poll::Ready(this.futs.iter_mut().map(MaybeDone::take).collect())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRt;

    #[test]
    fn join2_runs_concurrently() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let c1 = clock.clone();
        let c2 = clock.clone();
        let h = rt.spawn(async move {
            let (a, b) = join2(
                async move {
                    c1.sleep_secs(2.0).await;
                    2
                },
                async move {
                    c2.sleep_secs(3.0).await;
                    3
                },
            )
            .await;
            (a, b)
        });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some((2, 3)));
        // Concurrent, not sequential: 3 s, not 5 s.
        assert_eq!(clock.now(), 3_000_000_000);
    }

    #[test]
    fn join_all_collects_in_order() {
        let rt = SimRt::new();
        let clock = rt.clock();
        let futs: Vec<_> = (0..4u64)
            .map(|i| {
                let c = clock.clone();
                async move {
                    c.sleep_secs((4 - i) as f64).await;
                    i
                }
            })
            .collect();
        let h = rt.spawn(async move { join_all(futs).await });
        rt.run_until_idle();
        assert_eq!(h.try_take(), Some(vec![0, 1, 2, 3]));
        assert_eq!(clock.now(), 4_000_000_000);
    }
}
