//! Performance probe: runs one experiment at a configurable duration and
//! prints wall time (diagnosing simulator hot spots).

use std::time::Instant;

fn main() {
    std::thread::spawn(|| loop {
        std::thread::sleep(std::time::Duration::from_secs(2));
        let (tiny, name) = pivot_simrt::diag_tiny();
        eprintln!(
            "[diag] polls={} timer_fires={} vnow={:.3}s tiny={tiny} [{name}]",
            pivot_simrt::diag_polls(),
            pivot_simrt::diag_timer_fires(),
            pivot_simrt::diag_last_now() as f64 / 1e9,
        );
    });
    let args: Vec<String> = std::env::args().collect();
    let secs: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let which = args.get(2).map(String::as_str).unwrap_or("fig9");
    let t = Instant::now();
    match which {
        "fig9" => {
            let r = pivot_workloads::experiments::fig9::run(
                &pivot_workloads::experiments::fig9::Config {
                    duration_secs: secs,
                    workers: 4,
                    ..Default::default()
                },
            );
            println!(
                "fig9 latencies={} wall={:?}",
                r.latencies.len(),
                t.elapsed()
            );
        }
        "fig9base" => {
            // Same workload but no fault: is limplock itself the issue?
            let r = pivot_workloads::experiments::fig9::run(
                &pivot_workloads::experiments::fig9::Config {
                    duration_secs: secs,
                    workers: 4,
                    case: pivot_workloads::experiments::fig9::Case::RogueGc,
                    ..Default::default()
                },
            );
            println!(
                "fig9gc latencies={} wall={:?}",
                r.latencies.len(),
                t.elapsed()
            );
        }
        "fig8" => {
            let r = pivot_workloads::experiments::fig8::run(
                &pivot_workloads::experiments::fig8::Config {
                    duration_secs: secs,
                    clients_per_host: 3,
                    files: 80,
                    ..Default::default()
                },
            );
            println!("fig8 dn_ops={:?} wall={:?}", r.dn_ops.len(), t.elapsed());
        }
        "fig1" => {
            let r = pivot_workloads::experiments::fig1::run(
                &pivot_workloads::experiments::fig1::Config {
                    duration_secs: secs,
                    workers: 4,
                    sort_gb: (0.5, 1.0),
                    ..Default::default()
                },
            );
            println!("fig1 hosts={} wall={:?}", r.per_host.len(), t.elapsed());
        }
        other => eprintln!("unknown probe {other}"),
    }
}
