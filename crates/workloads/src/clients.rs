//! The paper's client applications, as closed-loop simulation tasks.

use std::rc::Rc;

use pivot_hadoop::cluster::MB;
use pivot_hadoop::ctx::Ctx;
use pivot_hadoop::tracepoints as tp;
use pivot_model::Value;
use pivot_simrt::Counter;
use rand::Rng;

use crate::stack::{SimStack, StackConfig};

/// A handle to a running closed-loop client.
pub struct ClientHandle {
    /// Client process name (`FSread4m`, `HGet`, …).
    pub name: String,
    /// Host the client runs on.
    pub host: usize,
    /// Completed requests (time series; drives Figure 8a).
    pub completed: Counter,
}

/// Spawns a closed-loop HDFS reader (`FSread4m` / `FSread64m`): random
/// reads of `read_size` bytes from the pre-loaded dataset.
pub fn spawn_fsread(stack: &SimStack, host: usize, name: &str, read_size: f64) -> ClientHandle {
    let h = Rc::clone(&stack.cluster.hosts[host]);
    let agent = stack.cluster.new_agent(&h, name);
    let dfs = stack.hdfs.client(&h, &agent, name);
    let completed = Counter::new(stack.cluster.clock.clone());
    let counter = completed.clone();
    let files = stack.cfg.dataset_files;
    let rng = Rc::clone(&stack.cluster.rng);
    stack.cluster.rt.spawn(async move {
        loop {
            let i = rng.borrow_mut().gen_range(0..files);
            let mut ctx = Ctx::new();
            dfs.read_random(&mut ctx, &StackConfig::dataset_file(i), read_size)
                .await;
            counter.add(1.0);
        }
    });
    ClientHandle {
        name: name.to_owned(),
        host,
        completed,
    }
}

/// Spawns a closed-loop HBase row-lookup client (`HGet`).
pub fn spawn_hget(stack: &SimStack, host: usize) -> ClientHandle {
    spawn_hbase(stack, host, "HGet", false)
}

/// Spawns a closed-loop HBase scan client (`HScan`).
pub fn spawn_hscan(stack: &SimStack, host: usize) -> ClientHandle {
    spawn_hbase(stack, host, "HScan", true)
}

fn spawn_hbase(stack: &SimStack, host: usize, name: &str, scan: bool) -> ClientHandle {
    let h = Rc::clone(&stack.cluster.hosts[host]);
    let agent = stack.cluster.new_agent(&h, name);
    let client = stack.hbase.client(&h, &agent, name);
    let completed = Counter::new(stack.cluster.clock.clone());
    let counter = completed.clone();
    stack.cluster.rt.spawn(async move {
        loop {
            let mut ctx = Ctx::new();
            if scan {
                client.scan_random(&mut ctx).await;
            } else {
                client.get_random(&mut ctx).await;
            }
            counter.add(1.0);
        }
    });
    ClientHandle {
        name: name.to_owned(),
        host,
        completed,
    }
}

/// Spawns a repeating MapReduce sort job (`MRsort<N>g`). The input file is
/// bootstrapped into HDFS; the job reruns in a closed loop.
pub fn spawn_mrsort(
    stack: &SimStack,
    client_host: usize,
    name: &str,
    input_gb: f64,
    reducers: usize,
) -> ClientHandle {
    let input = format!("{name}/input");
    stack
        .hdfs
        .namenode
        .bootstrap_file(&input, input_gb * 1024.0 * MB, 3);
    let mr = Rc::clone(&stack.mr);
    let completed = Counter::new(stack.cluster.clock.clone());
    let counter = completed.clone();
    let spec = pivot_hadoop::mapreduce::JobSpec {
        name: name.to_owned(),
        input,
        reducers,
        client_host,
    };
    stack.cluster.rt.spawn(async move {
        loop {
            mr.run_job(spec.clone()).await;
            counter.add(1.0);
        }
    });
    ClientHandle {
        name: name.to_owned(),
        host: client_host,
        completed,
    }
}

/// Spawns one stress-test client process (§6.1): closed-loop random 8 kB
/// reads, invoking `StressTest.DoNextOp` before every operation.
pub fn spawn_stress(stack: &SimStack, host: usize, id: usize) -> ClientHandle {
    let h = Rc::clone(&stack.cluster.hosts[host]);
    let name = format!("StressTest-{}-{id}", h.name);
    let agent = stack.cluster.new_agent(&h, "StressTest");
    let dfs = stack.hdfs.client(&h, &agent, "StressTest");
    let completed = Counter::new(stack.cluster.clock.clone());
    let counter = completed.clone();
    let files = stack.cfg.dataset_files;
    let rng = Rc::clone(&stack.cluster.rng);
    let clock = stack.cluster.clock.clone();
    stack.cluster.rt.spawn(async move {
        loop {
            let i = rng.borrow_mut().gen_range(0..files);
            let mut ctx = Ctx::new();
            dfs.agent.invoke(
                tp::STRESS_DO_NEXT_OP,
                &mut ctx.bag,
                clock.now(),
                &[("op", Value::str("read8k"))],
            );
            dfs.read_random(&mut ctx, &StackConfig::dataset_file(i), 8.0 * 1024.0)
                .await;
            counter.add(1.0);
        }
    });
    ClientHandle {
        name,
        host,
        completed,
    }
}

/// NNBench-derived operations (§6.3, Table 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NnOp {
    /// Read 8 kB from a file (a DataNode operation).
    Read8k,
    /// Open a file for reading (NameNode, read lock).
    Open,
    /// Create a file for writing (NameNode, write lock).
    Create,
    /// Rename an existing file (NameNode, write lock).
    Rename,
}

impl NnOp {
    /// All four operations.
    pub const ALL: [NnOp; 4] = [NnOp::Read8k, NnOp::Open, NnOp::Create, NnOp::Rename];

    /// Display name matching the paper's Table 5.
    pub fn name(self) -> &'static str {
        match self {
            NnOp::Read8k => "Read8k",
            NnOp::Open => "Open",
            NnOp::Create => "Create",
            NnOp::Rename => "Rename",
        }
    }
}

/// Runs `count` closed-loop NNBench operations from `host`, returning the
/// mean per-request virtual latency in nanoseconds.
pub async fn nnbench_run(stack: &SimStack, host: usize, op: NnOp, count: usize) -> f64 {
    let h = Rc::clone(&stack.cluster.hosts[host]);
    let agent = stack.cluster.new_agent(&h, "NNBench");
    let dfs = stack.hdfs.client(&h, &agent, "NNBench");
    let clock = stack.cluster.clock.clone();
    let files = stack.cfg.dataset_files;
    let rng = Rc::clone(&stack.cluster.rng);
    let mut total = 0u64;
    for _ in 0..count {
        let mut ctx = Ctx::new();
        let t0 = clock.now();
        match op {
            NnOp::Read8k => {
                let i = rng.borrow_mut().gen_range(0..files);
                dfs.read_random(&mut ctx, &StackConfig::dataset_file(i), 8.0 * 1024.0)
                    .await;
            }
            NnOp::Open => dfs.metadata(&mut ctx, "open", false).await,
            NnOp::Create => dfs.metadata(&mut ctx, "create", true).await,
            NnOp::Rename => dfs.metadata(&mut ctx, "rename", true).await,
        }
        total += clock.now() - t0;
    }
    total as f64 / count as f64
}
