//! Ablations of the design choices DESIGN.md calls out (paper §4):
//!
//! - **Query optimization** (Table 3 rewrites) on vs. off: how many tuples
//!   the baggage carries, and how large serialized baggage gets on the
//!   wire (the paper's Figure 6 argument for inline evaluation).
//! - **Process-local aggregation**: tuples emitted by advice vs. result
//!   rows actually reported to the frontend (the paper's "600 tuples/s →
//!   6 tuples/s per DataNode" claim).

use pivot_hadoop::cluster::{ClusterConfig, MB};

use crate::clients;
use crate::experiments::fig1::Q2;
use crate::stack::{SimStack, StackConfig};

/// Configuration of the ablation run.
#[derive(Clone, Debug)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Virtual duration in seconds.
    pub duration_secs: f64,
    /// Worker host count.
    pub workers: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 42,
            duration_secs: 30.0,
            workers: 8,
        }
    }
}

/// Measurements from one optimizer mode.
#[derive(Clone, Copy, Debug)]
pub struct Side {
    /// Tuples packed into baggage across all processes.
    pub tuples_packed: u64,
    /// Tuples emitted by advice (before local aggregation).
    pub tuples_emitted: u64,
    /// Result rows actually reported to the frontend.
    pub rows_reported: u64,
    /// Mean serialized baggage size on RPC envelopes (bytes).
    pub mean_baggage_bytes: f64,
    /// Number of RPC envelopes observed.
    pub envelopes: u64,
}

/// Results of the ablation.
#[derive(Clone, Copy, Debug)]
pub struct Result {
    /// With the Table 3 rewrites.
    pub optimized: Side,
    /// Without them (pack everything raw, filter/aggregate at the end).
    pub unoptimized: Side,
}

/// Runs Q2 over a read-heavy workload in both optimizer modes.
pub fn run(cfg: &Config) -> Result {
    Result {
        optimized: run_side(cfg, true),
        unoptimized: run_side(cfg, false),
    }
}

fn run_side(cfg: &Config, optimize: bool) -> Side {
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: cfg.workers,
            seed: cfg.seed,
            optimize_queries: optimize,
            ..ClusterConfig::default()
        },
        dataset_files: 60,
        ..StackConfig::default()
    });
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    clients::spawn_fsread(&stack, 1, "FSread64m", 64.0 * MB);
    clients::spawn_hget(&stack, 2 % cfg.workers);
    stack.install(Q2).expect("Q2 compiles");
    stack.run_for_secs(cfg.duration_secs);

    let totals = stack.cluster.agent_totals();
    let bytes = stack.cluster.baggage_bytes.total();
    let envelopes = stack.cluster.baggage_bytes.len() as u64;
    Side {
        tuples_packed: totals.tuples_packed,
        tuples_emitted: totals.tuples_emitted,
        rows_reported: totals.rows_reported,
        mean_baggage_bytes: if envelopes > 0 {
            bytes / envelopes as f64
        } else {
            0.0
        },
        envelopes,
    }
}
