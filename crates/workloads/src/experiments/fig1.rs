//! Figure 1: HDFS throughput, per machine and per client application.
//!
//! Reproduces the paper's §2.1 motivating experiment: six client
//! applications run simultaneously against the stack, and three queries
//! expose (a) DataNode throughput per machine (Q1 — the metric HDFS
//! already has), (b) the same metric grouped by the **top-level client
//! application** (Q2 — impossible without the happened-before join), and
//! (c) a pivot table of per-host, per-phase disk IO for `MRsort10g`.

use pivot_hadoop::cluster::{ClusterConfig, MB};

use crate::clients;
use crate::experiments::{rows_with_value, series_by_key, Series};
use crate::stack::{SimStack, StackConfig};

/// The paper's Q1 (§2.1).
pub const Q1: &str = "From incr In DataNodeMetrics.incrBytesRead
GroupBy incr.host
Select incr.host, SUM(incr.delta)";

/// The paper's Q2 (§2.1).
pub const Q2: &str = "From incr In DataNodeMetrics.incrBytesRead
Join cl In First(ClientProtocols) On cl -> incr
GroupBy cl.procName
Select cl.procName, SUM(incr.delta)";

fn pivot_query(stream: &str, client: &str) -> String {
    format!(
        "From io In {stream}
         Join cl In First(ClientProtocols) On cl -> io
         Where cl.procName == \"{client}\"
         GroupBy io.host, io.phase
         Select io.host, io.phase, SUM(io.delta)"
    )
}

/// Configuration for the Figure 1 run.
#[derive(Clone, Debug)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Virtual duration in seconds (the paper plots ~15 minutes; the
    /// default keeps the harness quick while preserving the shape).
    pub duration_secs: f64,
    /// Worker host count.
    pub workers: usize,
    /// Input sizes of the two sort jobs, in GB.
    pub sort_gb: (f64, f64),
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 42,
            duration_secs: 120.0,
            workers: 8,
            sort_gb: (10.0, 100.0),
        }
    }
}

/// One cell of the Figure 1c pivot table.
#[derive(Clone, Debug)]
pub struct PivotCell {
    /// Host name.
    pub host: String,
    /// IO phase (`HDFS` / `Map` / `Shuffle` / `Reduce`).
    pub phase: String,
    /// Megabytes read.
    pub read_mb: f64,
    /// Megabytes written.
    pub write_mb: f64,
}

/// Results of the Figure 1 experiment.
#[derive(Clone, Debug)]
pub struct Result {
    /// Figure 1a: per-host HDFS read throughput (MB/s per interval).
    pub per_host: Vec<Series>,
    /// Figure 1b: the same, grouped by top-level client application.
    pub per_client: Vec<Series>,
    /// Figure 1c: disk IO pivot table for `MRsort10g`.
    pub pivot: Vec<PivotCell>,
    /// The reporting interval used (seconds).
    pub interval_secs: f64,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Result {
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: cfg.workers,
            seed: cfg.seed,
            ..ClusterConfig::default()
        },
        dataset_files: 120,
        ..StackConfig::default()
    });

    // The six client applications of §2.1.
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    clients::spawn_fsread(&stack, 1, "FSread64m", 64.0 * MB);
    clients::spawn_hget(&stack, 2 % cfg.workers);
    clients::spawn_hscan(&stack, 3 % cfg.workers);
    clients::spawn_mrsort(
        &stack,
        4 % cfg.workers,
        "MRsort10g",
        cfg.sort_gb.0,
        cfg.workers,
    );
    clients::spawn_mrsort(
        &stack,
        5 % cfg.workers,
        "MRsort100g",
        cfg.sort_gb.1,
        cfg.workers,
    );

    let q1 = stack.install(Q1).expect("Q1 compiles");
    let q2 = stack.install(Q2).expect("Q2 compiles");
    let qr = stack
        .install(&pivot_query("FileInputStream", "MRsort10g"))
        .expect("pivot read query compiles");
    let qw = stack
        .install(&pivot_query("FileOutputStream", "MRsort10g"))
        .expect("pivot write query compiles");

    stack.run_for_secs(cfg.duration_secs);

    let interval = stack.cfg.cluster.report_interval;
    let scale = 1.0 / (MB * interval);
    let per_host = series_by_key(&stack.results(&q1), scale);
    let per_client = series_by_key(&stack.results(&q2), scale);

    // Assemble the pivot table from the two grouped queries.
    let mut pivot: Vec<PivotCell> = Vec::new();
    let mut upsert = |host: String, phase: String, mb: f64, write: bool| {
        let cell = match pivot
            .iter_mut()
            .find(|c| c.host == host && c.phase == phase)
        {
            Some(c) => c,
            None => {
                pivot.push(PivotCell {
                    host,
                    phase,
                    read_mb: 0.0,
                    write_mb: 0.0,
                });
                pivot.last_mut().expect("just pushed")
            }
        };
        if write {
            cell.write_mb += mb;
        } else {
            cell.read_mb += mb;
        }
    };
    for (keys, v) in rows_with_value(&stack.results(&qr)) {
        if let [host, phase] = keys.as_slice() {
            upsert(host.clone(), phase.clone(), v / MB, false);
        }
    }
    for (keys, v) in rows_with_value(&stack.results(&qw)) {
        if let [host, phase] = keys.as_slice() {
            upsert(host.clone(), phase.clone(), v / MB, true);
        }
    }
    pivot.sort_by(|a, b| (&a.host, &a.phase).cmp(&(&b.host, &b.phase)));

    Result {
        per_host,
        per_client,
        pivot,
        interval_secs: interval,
    }
}
