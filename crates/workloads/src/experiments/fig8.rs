//! Figure 8: diagnosing the HDFS-6268 replica-selection bug (paper §6.1).
//!
//! 96 stress-test clients perform closed-loop random 8 kB reads against an
//! 8-DataNode cluster. With the bug enabled, rack-local replica selection
//! follows a global static ordering, so low-index hosts (A, D in the
//! paper) serve far more requests than the rest. Queries Q3–Q7 walk the
//! same diagnosis chain as the paper: throughput skew → uniform client
//! behaviour → uniform placement → skewed selection → static preference
//! order.

use pivot_hadoop::cluster::{ClusterConfig, MB};

use crate::clients::{self, ClientHandle};
use crate::experiments::{host_index, rows_with_value};
use crate::stack::{SimStack, StackConfig};

/// Paper Q3: DataNode request throughput.
pub const Q3: &str = "From dnop In DN.DataTransferProtocol
GroupBy dnop.host
Select dnop.host, COUNT";

/// Paper Q4: file-read distribution per client.
pub const Q4: &str = "From getloc In NN.GetBlockLocations
Join st In StressTest.DoNextOp On st -> getloc
GroupBy st.host, getloc.src
Select st.host, getloc.src, COUNT";

/// Paper Q5: replica-location frequency per client.
pub const Q5: &str = "From getloc In NN.GetBlockLocations
Join st In StressTest.DoNextOp On st -> getloc
GroupBy st.host, getloc.replicas
Select st.host, getloc.replicas, COUNT";

/// Paper Q6: DataNode selection frequency per client.
pub const Q6: &str = "From DNop In DN.DataTransferProtocol
Join st In StressTest.DoNextOp On st -> DNop
GroupBy st.host, DNop.host
Select st.host, DNop.host, COUNT";

/// Paper Q7: replica-choice preference, excluding local reads.
pub const Q7: &str = "From DNop In DN.DataTransferProtocol
Join getloc In NN.GetBlockLocations On getloc -> DNop
Join st In StressTest.DoNextOp On st -> getloc
Where st.host != DNop.host
GroupBy DNop.host, getloc.replicas
Select DNop.host, getloc.replicas, COUNT";

/// Configuration of the Figure 8 run.
#[derive(Clone, Debug)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Virtual duration in seconds (paper: 5 minutes).
    pub duration_secs: f64,
    /// Worker host count (paper: 8 DataNodes + 1 NameNode).
    pub workers: usize,
    /// Stress clients per host (paper: 96 total on 8 hosts).
    pub clients_per_host: usize,
    /// Dataset file count (paper: 10 000 × 128 MB; scaled).
    pub files: usize,
    /// Enable the HDFS-6268 bug.
    pub bug: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 42,
            duration_secs: 60.0,
            workers: 8,
            clients_per_host: 12,
            files: 300,
            bug: true,
        }
    }
}

/// Per-client-host summary of the Q4 file-read distribution (Figure 8d).
#[derive(Clone, Debug)]
pub struct ReadDistribution {
    /// Client host.
    pub host: String,
    /// Distinct files read.
    pub files: usize,
    /// Mean reads per file.
    pub mean: f64,
    /// Coefficient of variation of reads per file (≈ uniform when small).
    pub cv: f64,
}

/// Results of the Figure 8 experiment.
#[derive(Clone, Debug)]
pub struct Result {
    /// 8a: average request throughput per client host (req/s).
    pub client_rate: Vec<(String, f64)>,
    /// 8b: average network transmit rate per host (MB/s).
    pub network_mbps: Vec<(String, f64)>,
    /// 8c: DataNode operation rate per host (ops/s), from Q3.
    pub dn_ops: Vec<(String, f64)>,
    /// 8d: file-read distribution per client host, from Q4.
    pub read_dist: Vec<ReadDistribution>,
    /// 8e: `freq[client][dn]` — how often each DataNode appears as a
    /// replica location, from Q5 (row-normalized).
    pub replica_freq: Vec<Vec<f64>>,
    /// 8f: `freq[client][dn]` — how often each DataNode is selected, from
    /// Q6 (row-normalized).
    pub selection_freq: Vec<Vec<f64>>,
    /// 8g: `p[chosen][other]` — probability `chosen` is selected when both
    /// `chosen` and `other` are non-local candidates, from Q7.
    pub preference: Vec<Vec<f64>>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Result {
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: cfg.workers,
            seed: cfg.seed,
            replica_bug: cfg.bug,
            ..ClusterConfig::default()
        },
        dataset_files: cfg.files,
        ..StackConfig::default()
    });

    let mut handles: Vec<ClientHandle> = Vec::new();
    for host in 0..cfg.workers {
        for id in 0..cfg.clients_per_host {
            handles.push(clients::spawn_stress(&stack, host, id));
        }
    }

    let q3 = stack.install(Q3).expect("Q3 compiles");
    let q4 = stack.install(Q4).expect("Q4 compiles");
    let q5 = stack.install(Q5).expect("Q5 compiles");
    let q6 = stack.install(Q6).expect("Q6 compiles");
    let q7 = stack.install(Q7).expect("Q7 compiles");

    stack.run_for_secs(cfg.duration_secs);

    let w = cfg.workers;
    let dur = cfg.duration_secs;

    // 8a: per-host client throughput.
    let mut client_rate: Vec<(String, f64)> = (0..w)
        .map(|h| (stack.cluster.hosts[h].name.clone(), 0.0))
        .collect();
    for handle in &handles {
        client_rate[handle.host].1 += handle.completed.total() / dur / cfg.clients_per_host as f64;
    }

    // 8b: per-host network transmit.
    let network_mbps = (0..w)
        .map(|h| {
            let host = &stack.cluster.hosts[h];
            (host.name.clone(), host.net_tx.total() / MB / dur)
        })
        .collect();

    // 8c from Q3.
    let mut dn_ops: Vec<(String, f64)> = rows_with_value(&stack.results(&q3))
        .into_iter()
        .map(|(keys, v)| (keys[0].clone(), v / dur))
        .collect();
    dn_ops.sort_by(|a, b| a.0.cmp(&b.0));

    // 8d from Q4: reads per (client, file).
    let mut per_client: Vec<Vec<f64>> = vec![Vec::new(); w];
    for (keys, v) in rows_with_value(&stack.results(&q4)) {
        if let Some(h) = host_index(&keys[0]) {
            per_client[h].push(v);
        }
    }
    let read_dist = per_client
        .iter()
        .enumerate()
        .map(|(h, counts)| {
            let n = counts.len().max(1) as f64;
            let mean = counts.iter().sum::<f64>() / n;
            let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
            ReadDistribution {
                host: stack.cluster.hosts[h].name.clone(),
                files: counts.len(),
                mean,
                cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            }
        })
        .collect();

    // 8e from Q5: split the replica list.
    let mut replica_freq = vec![vec![0.0; w]; w];
    for (keys, v) in rows_with_value(&stack.results(&q5)) {
        let Some(client) = host_index(&keys[0]) else {
            continue;
        };
        for part in keys[1].split(',') {
            if let Some(dn) = host_index(part) {
                replica_freq[client][dn] += v;
            }
        }
    }
    normalize_rows(&mut replica_freq);

    // 8f from Q6.
    let mut selection_freq = vec![vec![0.0; w]; w];
    for (keys, v) in rows_with_value(&stack.results(&q6)) {
        if let (Some(client), Some(dn)) = (host_index(&keys[0]), host_index(&keys[1])) {
            selection_freq[client][dn] += v;
        }
    }
    normalize_rows(&mut selection_freq);

    // 8g from Q7: chosen vs. alternatives.
    let mut chosen_over = vec![vec![0.0; w]; w];
    for (keys, v) in rows_with_value(&stack.results(&q7)) {
        let Some(chosen) = host_index(&keys[0]) else {
            continue;
        };
        for part in keys[1].split(',') {
            if let Some(other) = host_index(part) {
                if other != chosen {
                    chosen_over[chosen][other] += v;
                }
            }
        }
    }
    // P(chosen over other) among head-to-head opportunities.
    let mut preference = vec![vec![0.0; w]; w];
    for c in 0..w {
        for o in 0..w {
            let total = chosen_over[c][o] + chosen_over[o][c];
            preference[c][o] = if total > 0.0 {
                chosen_over[c][o] / total
            } else {
                f64::NAN
            };
        }
    }

    Result {
        client_rate,
        network_mbps,
        dn_ops,
        read_dist,
        replica_freq,
        selection_freq,
        preference,
    }
}

fn normalize_rows(m: &mut [Vec<f64>]) {
    for row in m {
        let sum: f64 = row.iter().sum();
        if sum > 0.0 {
            for v in row {
                *v /= sum;
            }
        }
    }
}
