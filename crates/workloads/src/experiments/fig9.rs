//! Figure 9 and the §6.2 case studies: end-to-end latency diagnosis.
//!
//! A closed-loop HBase workload experiences latency spikes; a Pivot
//! Tracing query decomposes each request's latency into per-component
//! times carried through the baggage (RS queue / RS process / DN transfer
//! / DN blocked / GC / NN lock), isolating the root cause:
//!
//! - [`Case::Limplock`] — a faulty cable downgrades one host's NIC from
//!   1 Gbit to 100 Mbit (the paper's Figure 9).
//! - [`Case::RogueGc`] — one RegionServer suffers periodic stop-the-world
//!   pauses (the paper's replication of VScope's case).
//! - [`Case::NnLock`] — a metadata-write flood overloads the NameNode's
//!   exclusive write lock (the paper's replication of the Retro case).

use std::rc::Rc;

use pivot_hadoop::cluster::{ClusterConfig, MB};
use pivot_hadoop::ctx::Ctx;
use pivot_hadoop::gc::Gc;

use crate::clients;
use crate::stack::{SimStack, StackConfig};

/// The latency-decomposition query (the paper's Q8 pattern, extended with
/// per-component timing joins).
pub const DECOMP_QUERY: &str = "From resp In RS.SendResponse
Join req In MostRecent(RS.ReceiveRequest) On req -> resp
Join d In MostRecent(DN.Transfer) On d -> resp
Join g In MostRecent(NN.GetBlockLocations) On g -> resp
Select resp.timestamp - req.timestamp, resp.queueNanos, resp.processNanos, resp.gcNanos, d.xferNanos, d.blockedNanos, d.gcNanos, g.lockNanos";

/// Which fault to inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Case {
    /// 1 Gbit → 100 Mbit NIC downgrade on one host.
    Limplock,
    /// Periodic stop-the-world GC in one RegionServer.
    RogueGc,
    /// NameNode overload through exclusive write locking.
    NnLock,
}

/// Configuration of the Figure 9 run.
#[derive(Clone, Debug)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Virtual duration in seconds.
    pub duration_secs: f64,
    /// Worker host count.
    pub workers: usize,
    /// The injected fault.
    pub case: Case,
    /// Which host is faulty (the paper's Host B = 1).
    pub faulty_host: usize,
    /// Closed-loop scan clients per host (enough load that healthy hosts
    /// run well above the limping link's capacity).
    pub scans_per_host: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 42,
            duration_secs: 90.0,
            workers: 8,
            case: Case::Limplock,
            faulty_host: 1,
            scans_per_host: 6,
        }
    }
}

/// A per-component latency decomposition, in seconds (Figure 9b).
#[derive(Clone, Copy, Debug, Default)]
pub struct Decomposition {
    /// Time queued at the RegionServer.
    pub rs_queue: f64,
    /// RegionServer processing time (excluding the DataNode transfer).
    pub rs_process: f64,
    /// DataNode transfer time (excluding blocked and GC time).
    pub dn_transfer: f64,
    /// Time blocked on the network inside the DataNode.
    pub dn_blocked: f64,
    /// Stop-the-world GC time (RS + DN).
    pub gc: f64,
    /// Time queued on the NameNode namespace lock.
    pub nn_lock: f64,
    /// Number of requests in this bucket.
    pub count: usize,
}

/// Results of the Figure 9 experiment.
#[derive(Clone, Debug)]
pub struct Result {
    /// 9a: (time s, end-to-end latency s) per request.
    pub latencies: Vec<(f64, f64)>,
    /// 9b (top): the average request.
    pub avg: Decomposition,
    /// 9b (bottom): requests slower than [`Result::slow_threshold_secs`].
    pub slow: Decomposition,
    /// Threshold separating "slow" requests.
    pub slow_threshold_secs: f64,
    /// 9c: per-host average network transmit rate (MB/s).
    pub network_mbps: Vec<(String, f64)>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Result {
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: cfg.workers,
            seed: cfg.seed,
            ..ClusterConfig::default()
        },
        regions_per_server: 2,
        ..StackConfig::default()
    });

    // Inject the fault.
    match cfg.case {
        Case::Limplock => {
            let host = &stack.cluster.hosts[cfg.faulty_host];
            host.nic_in.set_rate(12.5 * MB);
            host.nic_out.set_rate(12.5 * MB);
        }
        Case::RogueGc => {
            let rs = &stack.hbase.regionservers[cfg.faulty_host];
            let gc = Gc::start(&stack.cluster.rt, stack.cluster.clock.clone(), 10.0, 4.0);
            *rs.gc.borrow_mut() = Some(gc);
        }
        Case::NnLock => {
            // A metadata-write flood from several processes.
            for i in 0..16 {
                let h = Rc::clone(&stack.cluster.hosts[i % cfg.workers]);
                let agent = stack.cluster.new_agent(&h, "MetadataFlood");
                let dfs = stack.hdfs.client(&h, &agent, "MetadataFlood");
                stack.cluster.rt.spawn(async move {
                    loop {
                        let mut ctx = Ctx::new();
                        dfs.metadata(&mut ctx, "create", true).await;
                    }
                });
            }
        }
    }

    // The victim workload: closed-loop HBase scan clients on every host.
    for host in 0..cfg.workers {
        for _ in 0..cfg.scans_per_host {
            clients::spawn_hscan(&stack, host);
        }
    }

    let q = stack.install(DECOMP_QUERY).expect("decomposition compiles");
    stack.run_for_secs(cfg.duration_secs);

    let results = stack.results(&q);
    let mut latencies = Vec::new();
    let mut all = Decomposition::default();
    let mut rows = Vec::new();
    for (t, row) in results.raw_rows() {
        let v = |i: usize| -> f64 { row.get(i).as_f64().unwrap_or(0.0) / 1e9 };
        let e2e = v(0);
        let queue = v(1);
        let process = v(2);
        let rs_gc = v(3);
        let xfer = v(4);
        let blocked = v(5);
        let dn_gc = v(6);
        let nn_lock = v(7);
        latencies.push((*t as f64 / 1e9, e2e));
        let d = Decomposition {
            rs_queue: (queue - rs_gc).max(0.0),
            rs_process: (process - xfer - nn_lock).max(0.0),
            dn_transfer: (xfer - blocked - dn_gc).max(0.0),
            dn_blocked: blocked,
            gc: rs_gc + dn_gc,
            nn_lock,
            count: 1,
        };
        rows.push((e2e, d));
        accumulate(&mut all, &d);
    }
    finish(&mut all);

    // Slow = the top 5% of request latencies (the paper uses a fixed 30 s
    // threshold on its testbed; a percentile transfers across scales).
    let mut sorted: Vec<f64> = latencies.iter().map(|(_, l)| *l).collect();
    sorted.sort_by(f64::total_cmp);
    let idx = (sorted.len() * 95) / 100;
    let threshold = sorted
        .get(idx.min(sorted.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);
    let mut slow = Decomposition::default();
    for (e2e, d) in &rows {
        if *e2e >= threshold && threshold > 0.0 {
            accumulate(&mut slow, d);
        }
    }
    finish(&mut slow);

    let network_mbps = (0..cfg.workers)
        .map(|h| {
            let host = &stack.cluster.hosts[h];
            (
                host.name.clone(),
                host.net_tx.total() / MB / cfg.duration_secs,
            )
        })
        .collect();

    Result {
        latencies,
        avg: all,
        slow,
        slow_threshold_secs: threshold,
        network_mbps,
    }
}

fn accumulate(acc: &mut Decomposition, d: &Decomposition) {
    acc.rs_queue += d.rs_queue;
    acc.rs_process += d.rs_process;
    acc.dn_transfer += d.dn_transfer;
    acc.dn_blocked += d.dn_blocked;
    acc.gc += d.gc;
    acc.nn_lock += d.nn_lock;
    acc.count += 1;
}

fn finish(acc: &mut Decomposition) {
    let n = acc.count.max(1) as f64;
    acc.rs_queue /= n;
    acc.rs_process /= n;
    acc.dn_transfer /= n;
    acc.dn_blocked /= n;
    acc.gc /= n;
    acc.nn_lock /= n;
}
