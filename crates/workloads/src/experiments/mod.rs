//! Experiment drivers — one per paper figure / table.
//!
//! Each driver builds a stack, runs the paper's workload, installs the
//! paper's queries, and returns structured results. The `pivot-bench`
//! binaries print them in the paper's format; the integration tests assert
//! on their *shape* (who wins, by roughly what factor).

pub mod ablation;
pub mod fig1;
pub mod fig8;
pub mod fig9;
pub mod table5;

use pivot_core::QueryResults;
use pivot_model::Value;

/// One labelled time series (e.g. a host's throughput per interval).
#[derive(Clone, Debug)]
pub struct Series {
    /// Series label (host or client name).
    pub label: String,
    /// One point per reporting interval.
    pub points: Vec<f64>,
}

/// Extracts per-interval series from a single-key aggregating query:
/// rows are `(key, value)`; returns one series per key with values scaled
/// by `scale` (e.g. `1 / (MB · interval)` for MB/s).
pub fn series_by_key(results: &QueryResults, scale: f64) -> Vec<Series> {
    let series = results.series();
    let n = series.len();
    let mut out: Vec<Series> = Vec::new();
    for (i, (_, rows)) in series.iter().enumerate() {
        for row in rows {
            let label = row.values.first().map(Value::to_string);
            let Some(label) = label else { continue };
            let value = row.values.get(1).and_then(Value::as_f64).unwrap_or(0.0) * scale;
            let s = match out.iter_mut().find(|s| s.label == label) {
                Some(s) => s,
                None => {
                    out.push(Series {
                        label,
                        points: vec![0.0; n],
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            s.points[i] = value;
        }
    }
    out.sort_by(|a, b| a.label.cmp(&b.label));
    out
}

/// Extracts cumulative `(key…, value)` rows as strings + value.
pub fn rows_with_value(results: &QueryResults) -> Vec<(Vec<String>, f64)> {
    results
        .rows()
        .into_iter()
        .map(|r| {
            let n = r.values.len();
            let keys = r.values[..n - 1].iter().map(Value::to_string).collect();
            let v = r.values[n - 1].as_f64().unwrap_or(0.0);
            (keys, v)
        })
        .collect()
}

/// Maps `host-A` → 0, `host-B` → 1, …
pub fn host_index(name: &str) -> Option<usize> {
    let letter = name.strip_prefix("host-")?.chars().next()?;
    if letter.is_ascii_uppercase() {
        Some((letter as u8 - b'A') as usize)
    } else {
        None
    }
}
