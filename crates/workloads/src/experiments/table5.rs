//! Table 5: application-level overheads of Pivot Tracing (paper §6.3).
//!
//! Measures the latency overhead of NNBench-derived HDFS requests
//! (`Read8k`, `Open`, `Create`, `Rename`) under six configurations:
//!
//! 1. unmodified (agents hard-disabled),
//! 2. Pivot Tracing enabled, no queries,
//! 3. baggage with 1 tuple propagating, no advice,
//! 4. baggage with 60 tuples (≈1 kB) propagating, no advice,
//! 5. the §6.1 queries (Q3–Q7) installed,
//! 6. the §6.2 timing queries installed.
//!
//! Overheads are reported two ways: **wall-clock** per-request cost of the
//! Pivot Tracing machinery itself (the real Rust code executing on the
//! simulated request path — the analogue of the paper's CPU overhead), and
//! the **virtual-time** request latency (which captures baggage bytes
//! inflating RPC messages).

use std::rc::Rc;
use std::time::Instant;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_hadoop::cluster::ClusterConfig;
use pivot_model::{Tuple, Value};

use crate::clients::NnOp;
use crate::experiments::fig8;
use crate::experiments::fig9;
use crate::stack::{SimStack, StackConfig};

/// The measured configurations, in paper order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Setup {
    /// No Pivot Tracing at all.
    Unmodified,
    /// Agents active, nothing woven.
    PivotTracingEnabled,
    /// One tuple riding in the baggage, no advice.
    Baggage1,
    /// Sixty tuples (≈1 kB) riding in the baggage, no advice.
    Baggage60,
    /// The §6.1 diagnosis queries installed (Q3–Q7).
    Queries61,
    /// The §6.2 timing queries installed.
    Queries62,
}

impl Setup {
    /// All six rows.
    pub const ALL: [Setup; 6] = [
        Setup::Unmodified,
        Setup::PivotTracingEnabled,
        Setup::Baggage1,
        Setup::Baggage60,
        Setup::Queries61,
        Setup::Queries62,
    ];

    /// Row label matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Setup::Unmodified => "Unmodified",
            Setup::PivotTracingEnabled => "PivotTracing Enabled",
            Setup::Baggage1 => "Baggage - 1 Tuple",
            Setup::Baggage60 => "Baggage - 60 Tuples",
            Setup::Queries61 => "Queries - 6.1",
            Setup::Queries62 => "Queries - 6.2",
        }
    }
}

/// Configuration of the Table 5 run.
#[derive(Clone, Debug)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Requests per (setup, operation) cell.
    pub requests: usize,
    /// Worker host count.
    pub workers: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 42,
            requests: 400,
            workers: 8,
        }
    }
}

/// One measured cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Real (wall-clock) nanoseconds per request spent executing the
    /// simulation+instrumentation under this setup.
    pub wall_ns_per_req: f64,
    /// Virtual request latency in nanoseconds.
    pub virtual_ns_per_req: f64,
}

/// The full table: `rows[setup][op]`.
#[derive(Clone, Debug)]
pub struct Result {
    /// Measured cells.
    pub cells: Vec<Vec<Cell>>,
    /// Wall-clock overhead percentages versus the unmodified row.
    pub overhead_pct: Vec<Vec<f64>>,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> Result {
    let mut cells: Vec<Vec<Cell>> = Vec::new();
    for setup in Setup::ALL {
        let mut row = Vec::new();
        for op in NnOp::ALL {
            row.push(measure(cfg, setup, op));
        }
        cells.push(row);
    }
    let overhead_pct = cells
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    let base = cells[0][i].wall_ns_per_req;
                    if base > 0.0 {
                        (c.wall_ns_per_req - base) / base * 100.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    Result {
        cells,
        overhead_pct,
    }
}

fn measure(cfg: &Config, setup: Setup, op: NnOp) -> Cell {
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: cfg.workers,
            seed: cfg.seed,
            ..ClusterConfig::default()
        },
        dataset_files: 64,
        ..StackConfig::default()
    });

    match setup {
        Setup::Unmodified => {
            // Hard-disable every agent: invoke() returns immediately.
            stack.cluster.set_agents_enabled(false);
        }
        Setup::PivotTracingEnabled | Setup::Baggage1 | Setup::Baggage60 => {}
        Setup::Queries61 => {
            for q in [fig8::Q3, fig8::Q4, fig8::Q5, fig8::Q6, fig8::Q7] {
                stack.install(q).expect("§6.1 queries compile");
            }
        }
        Setup::Queries62 => {
            stack
                .install(fig9::DECOMP_QUERY)
                .expect("decomposition compiles");
            stack
                .install(
                    "From g In NN.ClientProtocol
                     Join cl In MostRecent(ClientProtocols) On cl -> g
                     GroupBy cl.procName, g.op
                     Select cl.procName, g.op, AVERAGE(g.lockNanos)",
                )
                .expect("§6.2 metadata query compiles");
        }
    }

    let seed_tuples = match setup {
        Setup::Baggage1 => 1,
        Setup::Baggage60 => 60,
        _ => 0,
    };

    // Run the benchmark as one simulation task, measuring wall time
    // around the whole virtual run.
    let requests = cfg.requests;
    let h = Rc::clone(&stack.cluster.hosts[0]);
    let agent = stack.cluster.new_agent(&h, "NNBench");
    let dfs = stack.hdfs.client(&h, &agent, "NNBench");
    let clock = stack.cluster.clock.clone();
    let files = stack.cfg.dataset_files;
    let rng = Rc::clone(&stack.cluster.rng);
    let done = stack.cluster.rt.spawn(async move {
        let mut virtual_total = 0u64;
        for r in 0..requests {
            let mut ctx = pivot_hadoop::ctx::Ctx::new();
            if seed_tuples > 0 {
                seed_baggage(&mut ctx.bag, seed_tuples);
            }
            let t0 = clock.now();
            match op {
                NnOp::Read8k => {
                    let i = rng.borrow_mut().gen_range(0..files);
                    dfs.read_random(
                        &mut ctx,
                        &crate::stack::StackConfig::dataset_file(i),
                        8.0 * 1024.0,
                    )
                    .await;
                }
                NnOp::Open => dfs.metadata(&mut ctx, "open", false).await,
                NnOp::Create => dfs.metadata(&mut ctx, "create", true).await,
                NnOp::Rename => dfs.metadata(&mut ctx, "rename", true).await,
            }
            virtual_total += clock.now() - t0;
            let _ = r;
        }
        virtual_total
    });

    let wall = Instant::now();
    while !done.is_done() {
        stack.cluster.rt.run_for_secs(60.0);
    }
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let virtual_total = done.try_take().expect("benchmark completed");

    Cell {
        wall_ns_per_req: wall_ns / cfg.requests as f64,
        virtual_ns_per_req: virtual_total as f64 / cfg.requests as f64,
    }
}

/// Packs `n` 8-byte tuples into the baggage under an otherwise-unused
/// query id (the paper's "baggage but no advice" rows).
fn seed_baggage(bag: &mut Baggage, n: usize) {
    let tuples = (0..n).map(|i| Tuple::from_iter([Value::U64(i as u64)]));
    bag.pack(QueryId(0xDEAD), &PackMode::All, tuples);
}

use rand::Rng;
