//! Client applications and experiment drivers.
//!
//! This crate assembles the simulated stack ([`stack::SimStack`]) and
//! provides the client applications the paper's evaluation runs against it
//! (§2.1, §6):
//!
//! | Client | Behaviour |
//! |---|---|
//! | `FSread4m` | Random closed-loop 4 MB HDFS reads |
//! | `FSread64m` | Random closed-loop 64 MB HDFS reads |
//! | `HGet` | 10 kB row lookups in a large HBase table |
//! | `HScan` | 4 MB table scans of a large HBase table |
//! | `MRsort10g` / `MRsort100g` | MapReduce sort jobs |
//! | `StressTest` | Closed-loop random 8 kB HDFS reads (96 clients, §6.1) |
//! | NNBench-derived | `Read8k`, `Open`, `Create`, `Rename` (§6.3) |
//!
//! The [`experiments`] module contains one driver per paper figure/table;
//! each returns structured results so the `pivot-bench` binaries print
//! them and the integration tests assert on their shape.

pub mod clients;
pub mod experiments;
pub mod stack;

pub use stack::{SimStack, StackConfig};
