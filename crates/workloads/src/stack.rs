//! Assembly of the full simulated stack.

use std::rc::Rc;

use pivot_core::frontend::InstallError;
use pivot_core::{QueryHandle, QueryResults};
use pivot_hadoop::cluster::{Cluster, ClusterConfig, MB};
use pivot_hadoop::hbase::HBase;
use pivot_hadoop::hdfs::Hdfs;
use pivot_hadoop::mapreduce::MapReduce;
use pivot_hadoop::yarn::Yarn;

/// Stack construction parameters.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Cluster fabric parameters.
    pub cluster: ClusterConfig,
    /// HBase regions per RegionServer.
    pub regions_per_server: usize,
    /// YARN container slots per NodeManager.
    pub yarn_slots: usize,
    /// Number of pre-loaded HDFS dataset files (`data/file-<i>`).
    pub dataset_files: usize,
    /// Size of each dataset file in bytes.
    pub dataset_file_size: f64,
    /// Replication factor of the dataset.
    pub replication: usize,
}

impl Default for StackConfig {
    fn default() -> StackConfig {
        StackConfig {
            cluster: ClusterConfig::default(),
            regions_per_server: 2,
            yarn_slots: 2,
            dataset_files: 200,
            dataset_file_size: 128.0 * MB,
            replication: 3,
        }
    }
}

impl StackConfig {
    /// A small fast-to-simulate stack for tests and examples.
    pub fn small(seed: u64) -> StackConfig {
        StackConfig {
            cluster: ClusterConfig::small(seed),
            dataset_files: 40,
            ..StackConfig::default()
        }
    }

    /// Returns the name of dataset file `i`.
    pub fn dataset_file(i: usize) -> String {
        format!("data/file-{i}")
    }
}

/// The assembled simulated deployment: HDFS + HBase + MapReduce + YARN on
/// one cluster, with Pivot Tracing wired into every process (the paper's
/// Figure 7 topology).
pub struct SimStack {
    /// Stack parameters.
    pub cfg: StackConfig,
    /// The cluster fabric and Pivot Tracing control plane.
    pub cluster: Rc<Cluster>,
    /// HDFS.
    pub hdfs: Rc<Hdfs>,
    /// HBase.
    pub hbase: Rc<HBase>,
    /// YARN.
    pub yarn: Rc<Yarn>,
    /// MapReduce.
    pub mr: Rc<MapReduce>,
}

impl SimStack {
    /// Builds the stack and bootstraps its datasets.
    pub fn build(cfg: StackConfig) -> SimStack {
        let cluster = Cluster::new(cfg.cluster.clone());
        let hdfs = Hdfs::start(&cluster);
        let hbase = HBase::start(&cluster, &hdfs, cfg.regions_per_server);
        let yarn = Yarn::start(&cluster, cfg.yarn_slots);
        let mr = MapReduce::start(&cluster, &hdfs, &yarn);
        for i in 0..cfg.dataset_files {
            hdfs.namenode.bootstrap_file(
                &StackConfig::dataset_file(i),
                cfg.dataset_file_size,
                cfg.replication,
            );
        }
        SimStack {
            cfg,
            cluster,
            hdfs,
            hbase,
            yarn,
            mr,
        }
    }

    /// Installs a Pivot Tracing query (weaving advice everywhere).
    pub fn install(&self, text: &str) -> Result<QueryHandle, InstallError> {
        self.cluster.install(text)
    }

    /// Installs a named query.
    pub fn install_named(&self, name: &str, text: &str) -> Result<QueryHandle, InstallError> {
        self.cluster.install_named(name, text)
    }

    /// Uninstalls a query.
    pub fn uninstall(&self, handle: &QueryHandle) {
        self.cluster.uninstall(handle);
    }

    /// Advances the simulation by `secs` of virtual time.
    pub fn run_for_secs(&self, secs: f64) {
        self.cluster.rt.run_for_secs(secs);
    }

    /// Flushes agents and returns a snapshot of a query's results.
    pub fn results(&self, handle: &QueryHandle) -> QueryResults {
        self.cluster.flush_now();
        self.cluster.frontend.borrow().results(handle).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_builds_with_datasets() {
        let s = SimStack::build(StackConfig::small(7));
        assert_eq!(s.cluster.workers().len(), 4);
        assert!(s
            .hdfs
            .namenode
            .file_size(&StackConfig::dataset_file(0))
            .is_some());
        assert_eq!(s.yarn.free_slots(), 8);
        assert_eq!(s.hbase.regions, 8);
    }
}
