//! Differential check over the paper's experiment queries (Q1–Q7 and the
//! Figure 9 decomposition): compiled with and without the Table 3
//! rewrites, an identical execution must yield identical results — and
//! the static verifier's baggage bound for the optimized plan must never
//! exceed the unoptimized one.

use std::sync::Arc;

use pivot_analyze::{Analyzer, Code};
use pivot_core::bus::LocalBus;
use pivot_core::{Agent, Frontend, ProcessInfo, QueryBudget, QueryHandle};
use pivot_hadoop::tracepoints;
use pivot_model::Value;
use pivot_workloads::experiments::fig1::{Q1, Q2};
use pivot_workloads::experiments::fig8::{Q3, Q4, Q5, Q6, Q7};
use pivot_workloads::experiments::fig9::DECOMP_QUERY;

const QUERIES: [(&str, &str); 8] = [
    ("Q1", Q1),
    ("Q2", Q2),
    ("Q3", Q3),
    ("Q4", Q4),
    ("Q5", Q5),
    ("Q6", Q6),
    ("Q7", Q7),
    ("decomp", DECOMP_QUERY),
];

fn make_frontend(optimize: bool) -> Frontend {
    let mut fe = if optimize {
        Frontend::new()
    } else {
        Frontend::new_unoptimized()
    };
    tracepoints::define_all(&mut fe);
    fe
}

fn make_bus() -> LocalBus {
    let mut bus = LocalBus::new();
    for (host, name) in [
        ("host-A", "StressTest"),
        ("host-B", "StressTest"),
        ("namenode", "NameNode"),
        ("host-A", "DataNode"),
        ("host-B", "DataNode"),
        ("host-A", "RegionServer"),
    ] {
        bus.register(Arc::new(Agent::new(ProcessInfo {
            host: host.into(),
            procid: 1,
            procname: name.into(),
        })));
    }
    bus
}

/// Hop baggage across a (simulated) process boundary, the way an RPC
/// envelope would carry it.
fn hop(bag: &mut pivot_baggage::Baggage) -> pivot_baggage::Baggage {
    pivot_baggage::Baggage::from_bytes(&bag.to_bytes())
}

/// Replays a fixed multi-system request trace: every request starts at a
/// stress client, resolves block locations at the NameNode, reads from a
/// DataNode, and finishes with an HBase response carrying component
/// timings. Host choices make `st.host == DNop.host` true for some
/// requests (exercising Q7's Where) and false for others.
fn replay(bus: &LocalBus) {
    let [client_a, client_b, namenode, dn_a, dn_b, rs] = bus.agents() else {
        panic!("unexpected agent count");
    };
    for req in 0u64..12 {
        let client = if req % 3 == 0 { client_a } else { client_b };
        let dn = if req % 2 == 0 { dn_a } else { dn_b };
        let t0 = req * 1_000;

        let mut bag = pivot_baggage::Baggage::new();
        client.invoke(
            "ClientProtocols",
            &mut bag,
            t0,
            &[("procName", Value::str("StressTest"))],
        );
        client.invoke(
            "StressTest.DoNextOp",
            &mut bag,
            t0 + 1,
            &[("op", Value::str(if req % 4 == 0 { "open" } else { "read" }))],
        );

        let mut bag = hop(&mut bag);
        namenode.invoke(
            "NN.GetBlockLocations",
            &mut bag,
            t0 + 10,
            &[
                ("src", Value::str(format!("data/file-{}", req % 5))),
                ("replicas", Value::str("host-A,host-B")),
                ("lockNanos", Value::I64(50 + req as i64)),
            ],
        );
        namenode.invoke(
            "RS.ReceiveRequest",
            &mut bag,
            t0 + 12,
            &[("op", Value::str("get"))],
        );

        let mut bag = hop(&mut bag);
        dn.invoke(
            "DN.DataTransferProtocol",
            &mut bag,
            t0 + 20,
            &[
                ("op", Value::str("READ_BLOCK")),
                ("size", Value::I64(4096 * (1 + req as i64 % 3))),
            ],
        );
        dn.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            t0 + 25,
            &[("delta", Value::I64(100 * (req as i64 + 1)))],
        );
        dn.invoke(
            "DN.Transfer",
            &mut bag,
            t0 + 30,
            &[
                ("xferNanos", Value::I64(900)),
                ("blockedNanos", Value::I64(40 + req as i64)),
                ("gcNanos", Value::I64(0)),
            ],
        );

        let mut bag = hop(&mut bag);
        rs.invoke(
            "RS.SendResponse",
            &mut bag,
            t0 + 40,
            &[
                ("op", Value::str("get")),
                ("queueNanos", Value::I64(10)),
                ("processNanos", Value::I64(25 + req as i64)),
                ("gcNanos", Value::I64(0)),
            ],
        );
    }
}

fn run_side(optimize: bool) -> (Frontend, Vec<QueryHandle>) {
    let mut fe = make_frontend(optimize);
    let bus = make_bus();
    let handles: Vec<QueryHandle> = QUERIES
        .iter()
        .map(|(name, text)| {
            fe.install_named(name, text)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();
    for cmd in fe.drain_commands() {
        bus.broadcast(&cmd);
    }
    replay(&bus);
    bus.pump(1_000_000_000, &mut fe);
    (fe, handles)
}

/// Like [`run_side`] with optimization on, but with the overload
/// governor fully engaged: statically-derived budgets are pushed at
/// install (`set_enforce_budgets`), then generous finite budgets force
/// every agent onto the charging path — which must never trip, shed, or
/// perturb a single row on this workload.
fn run_side_enforced() -> (Frontend, Vec<QueryHandle>) {
    let mut fe = make_frontend(true);
    fe.set_enforce_budgets(true);
    let bus = make_bus();
    let handles: Vec<QueryHandle> = QUERIES
        .iter()
        .map(|(name, text)| {
            fe.install_named(name, text)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();
    let generous = QueryBudget {
        tuples_per_window: 1 << 40,
        ops_per_window: 1 << 50,
        bytes_per_window: 1 << 50,
        window_ns: 1_000_000_000,
        backoff_base_windows: 1,
        max_backoff_doublings: 0,
    };
    for h in &handles {
        fe.set_budget(h, generous);
    }
    for cmd in fe.drain_commands() {
        bus.broadcast(&cmd);
    }
    replay(&bus);
    bus.pump(1_000_000_000, &mut fe);
    (fe, handles)
}

#[test]
fn optimized_and_unoptimized_agree_on_experiment_queries() {
    let (opt_fe, opt_handles) = run_side(true);
    let (unopt_fe, unopt_handles) = run_side(false);

    for ((name, _), (ho, hu)) in QUERIES.iter().zip(opt_handles.iter().zip(&unopt_handles)) {
        let opt = opt_fe.results(ho);
        let unopt = unopt_fe.results(hu);
        assert_eq!(opt.rows(), unopt.rows(), "{name}: grouped rows differ");
        assert_eq!(
            opt.raw_rows(),
            unopt.raw_rows(),
            "{name}: streaming rows differ"
        );
        assert!(!opt.is_empty(), "{name}: trace produced no results");
    }
}

#[test]
fn enforced_generous_budgets_change_no_results() {
    let (base_fe, base_handles) = run_side(true);
    let (gov_fe, gov_handles) = run_side_enforced();

    for ((name, _), (hb, hg)) in QUERIES.iter().zip(base_handles.iter().zip(&gov_handles)) {
        let base = base_fe.results(hb);
        let gov = gov_fe.results(hg);
        assert_eq!(
            base.rows(),
            gov.rows(),
            "{name}: grouped rows differ under the governor"
        );
        assert_eq!(
            base.raw_rows(),
            gov.raw_rows(),
            "{name}: streaming rows differ under the governor"
        );
        assert!(
            gov.throttles().is_empty(),
            "{name}: a generous budget tripped the breaker"
        );
        let loss = gov.loss();
        assert_eq!(loss.tuples_shed, 0, "{name}: governor shed tuples");
        assert_eq!(
            base.loss().tuples_delivered,
            loss.tuples_delivered,
            "{name}: delivered-tuple counts diverge"
        );
    }
}

#[test]
fn verifier_accepts_experiment_queries_and_bounds_are_monotone() {
    let fe = make_frontend(true);
    let analyzer = Analyzer::new(&fe);
    for (name, text) in QUERIES {
        let a = analyzer.analyze(text, name);
        assert!(
            !a.has_errors(),
            "{name}: verifier rejected an experiment query: {:?}",
            a.diagnostics
        );
        // No hindsight-trigger false positives: none of the paper's
        // queries carry a `Trigger` clause, so PT010 must never fire.
        assert!(
            !a.has_code(Code::TriggerUnbounded),
            "{name}: spurious PT010: {:?}",
            a.diagnostics
        );
        let opt = a.optimized_cost.expect("optimized plan");
        let unopt = a.unoptimized_cost.expect("unoptimized plan");
        assert!(
            opt.total_bytes.le(unopt.total_bytes),
            "{name}: optimized bound {} exceeds unoptimized {}",
            opt.total_bytes,
            unopt.total_bytes
        );
    }
}
