//! Shape tests for the experiment drivers: not absolute numbers, but the
//! paper's qualitative results (who wins, where the skew is, which
//! component dominates).

use pivot_workloads::experiments::{ablation, fig1, fig8, fig9, table5};

#[test]
fn fig8_bug_skews_selection_and_fix_restores_uniformity() {
    let base = fig8::Config {
        duration_secs: 20.0,
        clients_per_host: 4,
        files: 120,
        ..fig8::Config::default()
    };

    let buggy = fig8::run(&fig8::Config { bug: true, ..base });
    let fixed = fig8::run(&fig8::Config { bug: false, ..base });

    // DataNode ops skew: with the bug, host-A serves far more than host-H
    // (paper Figure 8c: ~150 vs ~25 ops/s).
    let ops = |r: &fig8::Result, host: &str| -> f64 {
        r.dn_ops
            .iter()
            .find(|(h, _)| h == host)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let skew_buggy = ops(&buggy, "host-A") / ops(&buggy, "host-H").max(1e-9);
    let skew_fixed = ops(&fixed, "host-A") / ops(&fixed, "host-H").max(1e-9);
    assert!(
        skew_buggy > 2.0,
        "expected heavy skew with the bug, got {skew_buggy:.2}"
    );
    assert!(
        skew_fixed < 2.0,
        "expected near-uniform load when fixed, got {skew_fixed:.2}"
    );

    // Clients read files uniformly (Figure 8d): low coefficient of
    // variation regardless of the bug.
    for d in &buggy.read_dist {
        assert!(d.files > 10, "{}: too few files read", d.host);
    }

    // Replica locations are near-uniform (Figure 8e) even with the bug.
    for row in &buggy.replica_freq {
        for &v in row {
            assert!(
                v > 0.04 && v < 0.22,
                "replica frequency {v:.3} not near-uniform"
            );
        }
    }

    // Preference matrix (Figure 8g): with the bug, host-A wins virtually
    // every non-local head-to-head against host-H.
    let p = buggy.preference[0][7];
    assert!(
        p.is_nan() || p > 0.9,
        "expected host-A to dominate host-H, got {p:.2}"
    );
}

#[test]
fn fig9_limplock_blames_network_blocking() {
    let r = fig9::run(&fig9::Config {
        duration_secs: 30.0,
        workers: 4,
        // Enough closed-loop load that healthy hosts run well above the
        // limping link's 12.5 MB/s cap (the default of 6 leaves them
        // under it at this small scale, inverting the comparison).
        scans_per_host: 12,
        case: fig9::Case::Limplock,
        ..fig9::Config::default()
    });
    assert!(r.latencies.len() > 50, "too few requests measured");
    // Slow requests are dominated by DN blocked time (Figure 9b bottom).
    let s = &r.slow;
    assert!(s.count > 0, "no slow requests found");
    assert!(
        s.dn_blocked > s.rs_queue && s.dn_blocked > s.dn_transfer,
        "expected network blocking to dominate slow requests: {s:?}"
    );
    // The degraded host's network throughput is the low outlier (9c).
    let faulty = r.network_mbps[1].1;
    let healthy = r.network_mbps[0].1;
    assert!(
        faulty < healthy,
        "expected degraded host below healthy ({faulty:.1} vs {healthy:.1})"
    );
}

#[test]
fn fig9_rogue_gc_blames_gc() {
    let r = fig9::run(&fig9::Config {
        duration_secs: 40.0,
        workers: 4,
        case: fig9::Case::RogueGc,
        ..fig9::Config::default()
    });
    let s = &r.slow;
    assert!(s.count > 0, "no slow requests found");
    assert!(
        s.gc > s.dn_blocked && s.gc > s.rs_process,
        "expected GC to dominate slow requests: {s:?}"
    );
}

#[test]
fn fig9_nn_lock_blames_namenode() {
    let r = fig9::run(&fig9::Config {
        duration_secs: 30.0,
        workers: 4,
        case: fig9::Case::NnLock,
        ..fig9::Config::default()
    });
    let s = &r.slow;
    assert!(s.count > 0, "no slow requests found");
    assert!(
        s.nn_lock > s.dn_blocked && s.nn_lock > s.gc,
        "expected the NameNode lock to dominate slow requests: {s:?}"
    );
}

#[test]
fn fig1_attributes_throughput_to_clients() {
    let r = fig1::run(&fig1::Config {
        duration_secs: 40.0,
        workers: 4,
        sort_gb: (1.0, 2.0),
        ..fig1::Config::default()
    });
    assert!(!r.per_host.is_empty(), "no per-host series");
    let labels: Vec<&str> = r.per_client.iter().map(|s| s.label.as_str()).collect();
    for expected in ["FSread4m", "FSread64m", "HGet", "HScan"] {
        assert!(
            labels.contains(&expected),
            "missing client series {expected}: {labels:?}"
        );
    }
    // FSread64m moves more bytes than HGet (64 MB vs 10 kB closed loop).
    let total = |label: &str| -> f64 {
        r.per_client
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.points.iter().sum())
            .unwrap_or(0.0)
    };
    assert!(total("FSread64m") > total("HGet"));
    // The MRsort10g pivot table has Map-phase write IO somewhere.
    assert!(
        r.pivot.iter().any(|c| c.phase == "Map" && c.write_mb > 0.0),
        "no Map-phase writes in pivot table: {:?}",
        r.pivot
    );
}

#[test]
fn ablation_optimizer_shrinks_baggage_and_aggregation_shrinks_reports() {
    let r = ablation::run(&ablation::Config {
        duration_secs: 20.0,
        workers: 4,
        ..ablation::Config::default()
    });
    assert!(
        r.unoptimized.mean_baggage_bytes > 2.0 * r.optimized.mean_baggage_bytes,
        "expected the optimizer to shrink baggage: {:?} vs {:?}",
        r.optimized,
        r.unoptimized
    );
    // Local aggregation: many emitted tuples collapse into few rows
    // (the paper reports ~100x for Q2 at full cluster load; the small
    // smoke cluster still shows a solid factor).
    assert!(
        r.optimized.tuples_emitted > 5 * r.optimized.rows_reported,
        "expected ≥5x reduction from local aggregation: {:?}",
        r.optimized
    );
}

#[test]
fn table5_overheads_are_ordered_sanely() {
    let r = table5::run(&table5::Config {
        requests: 60,
        workers: 4,
        ..table5::Config::default()
    });
    assert_eq!(r.cells.len(), 6);
    assert_eq!(r.cells[0].len(), 4);
    // Virtual latency with 60 baggage tuples ≥ with 1 tuple (bigger RPCs).
    for op in 0..4 {
        assert!(
            r.cells[3][op].virtual_ns_per_req >= r.cells[2][op].virtual_ns_per_req * 0.99,
            "60-tuple baggage should not be cheaper on the wire"
        );
    }
}
