//! Dynamic instrumentation at runtime: queries weave and unweave while the
//! system is live, and unwoven tracepoints cost (almost) nothing.
//!
//! ```text
//! cargo run --example dynamic_monitoring --release
//! ```

use pivot_tracing::hadoop::cluster::MB;
use pivot_tracing::workloads::{clients, SimStack, StackConfig};

fn main() {
    let stack = SimStack::build(StackConfig::small(3));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);

    // Phase 1: run with no queries — every tracepoint invocation takes
    // the zero-probe fast path.
    stack.run_for_secs(10.0);
    let s = stack.cluster.agent_totals();
    println!(
        "after 10s unmonitored: advised invocations = {}, packed = {}",
        s.advised_invocations, s.tuples_packed
    );
    assert_eq!(s.advised_invocations, 0);

    // Phase 2: install Q2 at runtime — advice weaves into the running
    // cluster without restarting anything.
    let q2 = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             Join cl In First(ClientProtocols) On cl -> incr
             GroupBy cl.procName
             Select cl.procName, SUM(incr.delta)",
        )
        .expect("Q2 compiles");
    stack.run_for_secs(10.0);
    let mid = stack.cluster.agent_totals();
    let rows = stack.results(&q2).rows();
    println!(
        "after installing Q2: advised = {}, packed = {}, result rows = {}",
        mid.advised_invocations,
        mid.tuples_packed,
        rows.len()
    );
    assert!(mid.advised_invocations > 0);
    assert!(!rows.is_empty());

    // Phase 3: uninstall — advice unweaves, the system goes quiet again.
    stack.uninstall(&q2);
    stack.run_for_secs(10.0);
    let end = stack.cluster.agent_totals();
    println!(
        "after uninstalling: advised stayed at {} (was {})",
        end.advised_invocations, mid.advised_invocations
    );
    assert_eq!(end.advised_invocations, mid.advised_invocations);
    println!("\ninstall → observe → uninstall, all at runtime: dynamic.");
}
