//! End-to-end latency diagnosis (paper §6.2): a faulty cable downgrades
//! one host's NIC to 100 Mbit, and a baggage-carried timing query
//! decomposes slow requests to find the bottleneck.
//!
//! ```text
//! cargo run --example latency_diagnosis --release
//! ```

use pivot_tracing::workloads::experiments::fig9::{self, Case};

fn main() {
    let r = fig9::run(&fig9::Config {
        duration_secs: 60.0,
        case: Case::Limplock,
        ..fig9::Config::default()
    });

    println!("HBase scan workload with host-B's NIC at 100 Mbit:\n");
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>10} {:>7} {:>8}",
        "bucket", "RS queue", "RS proc", "DN transfer", "DN blocked", "GC", "NN lock"
    );
    for (label, d) in [("average", &r.avg), ("slow", &r.slow)] {
        println!(
            "{label:<10} {:>8.3}s {:>8.3}s {:>10.3}s {:>9.3}s {:>6.3}s {:>7.3}s",
            d.rs_queue, d.rs_process, d.dn_transfer, d.dn_blocked, d.gc, d.nn_lock
        );
    }
    println!(
        "\n{} requests observed; slow = latency > {:.2}s",
        r.latencies.len(),
        r.slow_threshold_secs
    );
    println!("\nPer-machine network transmit (the smoking gun):");
    for (host, mbps) in &r.network_mbps {
        println!("  {host:<8}  {mbps:6.1} MB/s");
    }
    println!(
        "\nSlow requests spend their time *blocked on the network inside \
         the DataNode*, and host-B's link throughput is the outlier — \
         exactly the paper's Figure 9 diagnosis."
    );
}
