//! Quickstart on the **live runtime**: the same Pivot Tracing workflow as
//! `quickstart.rs`, but against real threads and real sockets instead of
//! the simulator.
//!
//! ```text
//! cargo run --example live_quickstart --release
//! ```
//!
//! What happens:
//! 1. A frontend with a TCP pub/sub bus starts on a loopback port.
//! 2. Two "processes" connect agents to it: a sharded KV server and a
//!    client pool, each running real threads with thread-local baggage.
//! 3. A Q1-style query with a happened-before join is installed **while
//!    the service is under load**; results stream back over TCP.
//! 4. An ill-typed query is rejected by the static verifier before
//!    anything is broadcast to the agents.

use std::sync::Arc;
use std::time::Duration;

use pivot_tracing::core::frontend::InstallError;
use pivot_tracing::core::ProcessInfo;
use pivot_tracing::live::service::{define_kv_tracepoints, KvServer, LoadGen};
use pivot_tracing::live::{LiveAgent, LiveFrontend};

fn main() {
    // 1. Frontend + TCP bus (the paper's central pub/sub server).
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    println!("frontend bus listening on {}", fe.addr());

    // 2. Two processes join: the KV server and the client pool. Each
    //    LiveAgent owns the process's weave registry and reports partial
    //    results every 100 ms.
    let interval = Duration::from_millis(100);
    let server_agent = LiveAgent::connect(
        fe.addr(),
        ProcessInfo {
            host: "localhost".into(),
            procid: 1,
            procname: "kvserver".into(),
        },
        interval,
    )
    .expect("server agent connects");
    let client_agent = LiveAgent::connect(
        fe.addr(),
        ProcessInfo {
            host: "localhost".into(),
            procid: 2,
            procname: "kvclient".into(),
        },
        interval,
    )
    .expect("client agent connects");
    fe.wait_for_agents(2, Duration::from_secs(10));

    let server = KvServer::start(4, Arc::clone(server_agent.agent())).expect("kv server");
    let load =
        LoadGen::start(server.addr(), 3, Arc::clone(client_agent.agent())).expect("load generator");
    println!("kv server on {} with 3 load clients", server.addr());

    // 3. Install the happened-before join while traffic is flowing: which
    //    client is responsible for the bytes each shard touches? The
    //    client name is packed into baggage at KvClient.issueRequest,
    //    rides the request header across the socket and the shard-worker
    //    channel, and is unpacked at KvShard.execute.
    let q1 = fe
        .install(
            "From exec In KvShard.execute
             Join req In First(KvClient.issueRequest) On req -> exec
             GroupBy req.client
             Select req.client, COUNT, SUM(exec.bytes)",
        )
        .expect("Q1 installs");
    println!("\ninstalled Q1; sampling 2 seconds of live traffic ...");
    fe.wait_for_rows(&q1, 3, Duration::from_secs(30));
    std::thread::sleep(Duration::from_secs(2));

    println!("\nQ1 — shard-level bytes attributed to the originating client:");
    for row in fe.results(&q1).rows() {
        let client = &row.values[0];
        let count = row.values[1].as_f64().unwrap_or(0.0);
        let bytes = row.values[2].as_f64().unwrap_or(0.0);
        println!("  {client:<12}  {count:>6.0} ops  {bytes:>9.0} bytes");
    }

    // 4. The PR-1 static verifier still gates live installs: an advice
    //    program that can never evaluate is rejected before broadcast.
    let err = fe
        .install(
            "From exec In KvShard.execute
             Where exec.op && 5
             Select COUNT",
        )
        .expect_err("ill-typed query is rejected");
    match err {
        InstallError::Rejected(diags) => {
            println!("\nverifier rejected an ill-typed query before broadcast:");
            for d in diags.iter().take(2) {
                println!("  {d}");
            }
        }
        other => println!("\nunexpected install error: {other}"),
    }

    // Tear down: uninstall propagates over TCP, then processes drain.
    fe.uninstall(&q1);
    load.stop();
    println!(
        "\nserved {} KV ops while the query was live; uninstalled cleanly.",
        server.ops_served()
    );
    server.shutdown();
    server_agent.shutdown();
    client_agent.shutdown();
}
