//! Quickstart: install the paper's Q1 and Q2 against a small simulated
//! Hadoop stack and watch cross-tier attribution work.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use pivot_tracing::hadoop::cluster::MB;
use pivot_tracing::workloads::{clients, SimStack, StackConfig};

fn main() {
    // A 4-worker cluster with HDFS + HBase + YARN + MapReduce.
    let stack = SimStack::build(StackConfig::small(42));

    // Three client applications, as in the paper's §2.1.
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    clients::spawn_hget(&stack, 1);
    clients::spawn_hscan(&stack, 2);

    // Q1: the metric HDFS already exposes — DataNode throughput per host.
    let q1 = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host
             Select incr.host, SUM(incr.delta)",
        )
        .expect("Q1 compiles");

    // Q2: the same metric grouped by the *top-level client application*,
    // using the happened-before join. HBase requests travel client →
    // RegionServer → DataNode, yet the bytes attribute to HGet/HScan.
    let q2 = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             Join cl In First(ClientProtocols) On cl -> incr
             GroupBy cl.procName
             Select cl.procName, SUM(incr.delta)",
        )
        .expect("Q2 compiles");

    // Run 30 seconds of virtual time (finishes in well under a second).
    stack.run_for_secs(30.0);

    println!("Q1 — HDFS DataNode throughput per machine:");
    for row in stack.results(&q1).rows() {
        let host = &row.values[0];
        let mb = row.values[1].as_f64().unwrap_or(0.0) / MB / 30.0;
        println!("  {host:<8}  {mb:6.1} MB/s");
    }

    println!("\nQ2 — the same bytes, grouped by client application:");
    for row in stack.results(&q2).rows() {
        let client = &row.values[0];
        let mb = row.values[1].as_f64().unwrap_or(0.0) / MB / 30.0;
        println!("  {client:<14}  {mb:6.1} MB/s");
    }
    println!(
        "\nHDFS cannot produce the second table by itself: it only sees \
         RegionServers as clients. The happened-before join carries the \
         original process name across the HBase → HDFS boundary in the \
         request's baggage."
    );
}
