//! Diagnosing the HDFS-6268 replica-selection bug interactively, the way
//! §6.1 of the paper does: run stress clients, then drill down with
//! queries Q3 and Q6 — first with the bug, then with it fixed.
//!
//! ```text
//! cargo run --example replica_bug --release
//! ```

use pivot_tracing::hadoop::cluster::ClusterConfig;
use pivot_tracing::workloads::{clients, SimStack, StackConfig};

const Q3: &str = "From dnop In DN.DataTransferProtocol
GroupBy dnop.host
Select dnop.host, COUNT";

const Q6: &str = "From DNop In DN.DataTransferProtocol
Join st In StressTest.DoNextOp On st -> DNop
GroupBy st.host, DNop.host
Select st.host, DNop.host, COUNT";

fn run(bug: bool) {
    println!(
        "\n=== HDFS-6268 bug {} ===",
        if bug { "PRESENT" } else { "FIXED" }
    );
    let stack = SimStack::build(StackConfig {
        cluster: ClusterConfig {
            workers: 8,
            replica_bug: bug,
            seed: 7,
            ..ClusterConfig::default()
        },
        dataset_files: 200,
        ..StackConfig::default()
    });
    for host in 0..8 {
        for id in 0..6 {
            clients::spawn_stress(&stack, host, id);
        }
    }
    let q3 = stack.install(Q3).expect("Q3 compiles");
    let q6 = stack.install(Q6).expect("Q6 compiles");
    stack.run_for_secs(30.0);

    println!("Q3 — DataNode request counts:");
    for row in stack.results(&q3).rows() {
        println!("  {}  {:>6}", row.values[0], row.values[1]);
    }

    println!("Q6 — which DataNode each client host selects:");
    let rows = stack.results(&q6).rows();
    print!("            ");
    for dn in 0..8u8 {
        print!("  DN-{}", (b'A' + dn) as char);
    }
    println!();
    for client in 0..8u8 {
        let cname = format!("host-{}", (b'A' + client) as char);
        print!("  client {}  ", (b'A' + client) as char);
        for dn in 0..8u8 {
            let dname = format!("host-{}", (b'A' + dn) as char);
            let count = rows
                .iter()
                .find(|r| r.values[0].to_string() == cname && r.values[1].to_string() == dname)
                .and_then(|r| r.values[2].as_f64())
                .unwrap_or(0.0);
            print!("{count:>6.0}");
        }
        println!();
    }
}

fn main() {
    run(true);
    run(false);
    println!(
        "\nWith the bug, non-local reads pile onto the lowest-indexed \
         replica holders (hosts A and B dominate the columns); fixing the \
         NameNode's shuffle restores a near-uniform matrix."
    );
}
