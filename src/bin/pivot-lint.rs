//! `pivot-lint` — run the static advice verifier over query files.
//!
//! Each argument is a query file (conventionally `.pt`); `#` starts a
//! comment. Files are checked in order against the simulated stack's
//! tracepoint vocabulary (unless `--no-builtin`), and a clean query is
//! installed under its file stem so later files may join it by name.
//!
//! ```text
//! pivot-lint [--defs FILE] [--no-builtin] [--bound] [--strict] FILE...
//! ```
//!
//! Exit status is 1 when any file has an error-severity diagnostic
//! (or, with `--strict`, any diagnostic at all).

use std::path::Path;
use std::process::ExitCode;

use pivot_analyze::{Analyzer, Severity};
use pivot_core::Frontend;

const USAGE: &str = "\
usage: pivot-lint [options] FILE...

Statically verifies Pivot Tracing query files: name/schema resolution,
type coherence, advice dataflow well-formedness, baggage-cost bounds,
and query-reference cycles. A clean query is installed under its file
stem, so later files may reference earlier ones as sources.

options:
  --defs FILE    add tracepoint definitions from FILE; each line is
                 `Name: export, export, ...` (# comments allowed)
  --no-builtin   do not predefine the simulated Hadoop/HBase vocabulary
  --bound        print the static baggage bound of every clean query
  --strict       exit nonzero on warnings, not just errors
  -h, --help     print this help";

fn main() -> ExitCode {
    let mut defs = Vec::new();
    let mut files = Vec::new();
    let mut builtin = true;
    let mut bound = false;
    let mut strict = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--defs" => match argv.next() {
                Some(f) => defs.push(f),
                None => return fail("--defs needs a file argument"),
            },
            "--no-builtin" => builtin = false,
            "--bound" => bound = true,
            "--strict" => strict = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                return fail(&format!("unknown option `{arg}`"));
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return fail("no query files given");
    }

    let mut frontend = Frontend::new();
    if builtin {
        pivot_hadoop::tracepoints::define_all(&mut frontend);
    }
    for path in &defs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if let Err(e) = load_defs(&text, &mut frontend) {
            return fail(&format!("{path}: {e}"));
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for path in &files {
        let raw = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let text = strip_comments(&raw);
        let name = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_owned();

        let analysis = Analyzer::new(&frontend).analyze(&text, &name);
        for d in &analysis.diagnostics {
            println!("{}", d.render(path));
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Note => {}
            }
        }
        if analysis.has_errors() {
            continue;
        }
        if bound {
            report_bound(&name, &analysis);
        }
        // Make the clean query referenceable by later files. The
        // analyzer already vetted it, so skip the duplicate gate run.
        frontend.set_verify(false);
        let installed = frontend.install_named(&name, &text);
        frontend.set_verify(true);
        if let Err(e) = installed {
            println!("error: {path}: {e}");
            errors += 1;
        }
    }

    if errors > 0 {
        println!("pivot-lint: {errors} error(s), {warnings} warning(s)");
        ExitCode::FAILURE
    } else if warnings > 0 {
        println!("pivot-lint: {warnings} warning(s)");
        if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    } else {
        ExitCode::SUCCESS
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("pivot-lint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn strip_comments(raw: &str) -> String {
    raw.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses `Name: export, export, ...` lines into tracepoint definitions.
fn load_defs(text: &str, frontend: &mut Frontend) -> Result<(), String> {
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, exports) = line
            .split_once(':')
            .ok_or(format!("line {}: expected `Name: exports`", no + 1))?;
        frontend.define(
            name.trim(),
            exports
                .split(',')
                .map(str::trim)
                .filter(|e| !e.is_empty())
                .map(str::to_owned),
        );
    }
    Ok(())
}

fn report_bound(name: &str, analysis: &pivot_analyze::Analysis) {
    let Some(cost) = &analysis.optimized_cost else {
        return;
    };
    println!("{name}: baggage bound {} bytes", cost.total_bytes);
    for s in &cost.stages {
        println!(
            "  pack at `{}`: {} tuples x {} columns = {} bytes",
            s.alias, s.tuples, s.width, s.bytes
        );
    }
    if let Some(unopt) = &analysis.unoptimized_cost {
        println!("  (unoptimized plan: {} bytes)", unopt.total_bytes);
    }
    // A finite bound seeds the runtime overload governor: show the
    // default budget a frontend with `set_enforce_budgets(true)` would
    // push for this query, so operators can size overrides against it.
    if let Some(bytes) = cost.total_bytes.as_finite() {
        let b = pivot_core::QueryBudget::from_static_bound(Some(bytes));
        println!(
            "  default budget: {} tuples, {} vm-ops, {} bytes per {} ms window",
            b.tuples_per_window,
            b.ops_per_window,
            b.bytes_per_window,
            b.window_ns / 1_000_000
        );
    }
}
