//! # Pivot Tracing
//!
//! A Rust implementation of *Pivot Tracing: Dynamic Causal Monitoring for
//! Distributed Systems* (Mace, Roelke, Fonseca — SOSP 2015).
//!
//! Pivot Tracing combines **dynamic instrumentation** with **causal tracing**:
//! users install relational queries over tracepoint events at runtime, and the
//! novel *happened-before join* (`->`) correlates events across component,
//! process, and machine boundaries by propagating partial query state in a
//! per-request **baggage** container.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`itc`] — interval tree clocks, used to version baggage across branches.
//! - [`model`] — dynamic values, tuples, schemas, aggregations, expressions.
//! - [`baggage`] — the baggage abstraction (pack/unpack/serialize/split/join).
//! - [`query`] — the LINQ-like query language, optimizer, and advice compiler.
//! - [`core`] — tracepoints, advice weaving, agents, message bus, frontend.
//! - [`simrt`] — a deterministic discrete-event simulation runtime.
//! - [`hadoop`] — instrumented HDFS / HBase / MapReduce / YARN simulators.
//! - [`workloads`] — the paper's client applications and experiment drivers.
//! - [`live`] — the live runtime: thread-local baggage, instrumented
//!   threads/channels, a TCP message bus, and a real multi-threaded demo
//!   service (run `--example live_quickstart`).
//!
//! # Examples
//!
//! Install the paper's query Q2 — HDFS disk throughput grouped by the
//! *top-level client application*, crossing the HBase/MapReduce/HDFS tiers:
//!
//! ```
//! use pivot_tracing::hadoop::cluster::MB;
//! use pivot_tracing::workloads::{clients, SimStack, StackConfig};
//!
//! let stack = SimStack::build(StackConfig::small(42));
//! clients::spawn_hget(&stack, 0);
//! let q2 = stack
//!     .install(
//!         "From incr In DataNodeMetrics.incrBytesRead
//!          Join cl In First(ClientProtocols) On cl -> incr
//!          GroupBy cl.procName
//!          Select cl.procName, SUM(incr.delta)",
//!     )
//!     .unwrap();
//! stack.run_for_secs(5.0);
//! let rows = stack.results(&q2).rows();
//! assert_eq!(rows[0].values[0], pivot_tracing::model::Value::str("HGet"));
//! assert!(rows[0].values[1].as_f64().unwrap() > 0.0);
//! let _ = MB;
//! ```

pub use pivot_baggage as baggage;
pub use pivot_chaos as chaos;
pub use pivot_core as core;
pub use pivot_hadoop as hadoop;
pub use pivot_itc as itc;
pub use pivot_live as live;
pub use pivot_model as model;
pub use pivot_query as query;
pub use pivot_simrt as simrt;
pub use pivot_workloads as workloads;
