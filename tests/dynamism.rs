//! Integration tests for Pivot Tracing's dynamism and overhead claims:
//! queries install and uninstall at runtime, unwoven tracepoints take the
//! zero-probe fast path, and baggage stays small under the optimizer.

use pivot_tracing::hadoop::cluster::MB;
use pivot_tracing::workloads::{clients, SimStack, StackConfig};

#[test]
fn install_and_uninstall_at_runtime() {
    let stack = SimStack::build(StackConfig::small(21));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);

    // Unmonitored phase: no advice runs anywhere.
    stack.run_for_secs(5.0);
    assert_eq!(stack.cluster.agent_totals().advised_invocations, 0);

    // Live install.
    let q = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host Select incr.host, SUM(incr.delta)",
        )
        .unwrap();
    stack.run_for_secs(5.0);
    let during = stack.cluster.agent_totals().advised_invocations;
    assert!(during > 0, "advice never ran after install");
    let bytes_mid: f64 = stack
        .results(&q)
        .rows()
        .iter()
        .map(|r| r.values[1].as_f64().unwrap_or(0.0))
        .sum();
    assert!(bytes_mid > 0.0);

    // Live uninstall: counters freeze, results stop growing.
    stack.uninstall(&q);
    stack.run_for_secs(5.0);
    assert_eq!(
        stack.cluster.agent_totals().advised_invocations,
        during,
        "advice still running after uninstall"
    );
}

#[test]
fn empty_baggage_serializes_to_zero_bytes_in_flight() {
    // With no queries installed, every RPC envelope carries 0 baggage
    // bytes (the paper's "truly no overhead when disabled").
    let stack = SimStack::build(StackConfig::small(22));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    stack.run_for_secs(5.0);
    assert!(!stack.cluster.baggage_bytes.is_empty(), "no RPCs observed");
    assert_eq!(
        stack.cluster.baggage_bytes.total(),
        0.0,
        "baggage bytes leaked with no queries installed"
    );
}

#[test]
fn q2_baggage_stays_tiny_under_optimizer() {
    // Q2 packs FIRST(procName): each request should carry one small tuple,
    // tens of bytes — not hundreds (paper §6.3: Q7's worst case is ~137 B).
    let stack = SimStack::build(StackConfig::small(23));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             Join cl In First(ClientProtocols) On cl -> incr
             GroupBy cl.procName
             Select cl.procName, SUM(incr.delta)",
        )
        .unwrap();
    stack.run_for_secs(5.0);
    let n = stack.cluster.baggage_bytes.len() as f64;
    let mean = stack.cluster.baggage_bytes.total() / n.max(1.0);
    assert!(n > 0.0);
    assert!(
        mean > 0.0 && mean < 150.0,
        "mean baggage {mean:.1} B out of expected range"
    );
}

#[test]
fn reporting_interval_controls_result_granularity() {
    let stack = SimStack::build(StackConfig::small(24));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    let q = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host Select incr.host, SUM(incr.delta)",
        )
        .unwrap();
    stack.run_for_secs(10.0);
    let results = stack.results(&q);
    let series = results.series();
    // One merged bucket per 1-second reporting interval (±the final
    // partial flush).
    assert!(
        series.len() >= 8 && series.len() <= 12,
        "expected ~10 intervals, got {}",
        series.len()
    );
    // Interval sums add up to the cumulative total.
    let total: f64 = results
        .rows()
        .iter()
        .map(|r| r.values[1].as_f64().unwrap_or(0.0))
        .sum();
    let by_interval: f64 = series
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .map(|r| r.values[1].as_f64().unwrap_or(0.0))
        .sum();
    assert!((total - by_interval).abs() < 1e-6);
}
