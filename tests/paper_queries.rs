//! Integration tests: every query printed in the paper (Q1–Q9) installs
//! and produces results against the simulated stack.

use pivot_tracing::hadoop::cluster::MB;
use pivot_tracing::model::Value;
use pivot_tracing::workloads::{clients, SimStack, StackConfig};

fn stack_with_clients() -> SimStack {
    let stack = SimStack::build(StackConfig::small(11));
    clients::spawn_fsread(&stack, 0, "FSread4m", 4.0 * MB);
    clients::spawn_hget(&stack, 1);
    clients::spawn_stress(&stack, 2, 0);
    stack
}

#[test]
fn q1_per_host_throughput() {
    let stack = stack_with_clients();
    let q = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host
             Select incr.host, SUM(incr.delta)",
        )
        .unwrap();
    stack.run_for_secs(15.0);
    let rows = stack.results(&q).rows();
    assert!(!rows.is_empty());
    let total: f64 = rows
        .iter()
        .map(|r| r.values[1].as_f64().unwrap_or(0.0))
        .sum();
    assert!(total > 10.0 * MB, "only {total} bytes seen");
}

#[test]
fn q2_cross_tier_attribution_is_exact() {
    // Only HGet runs; every DataNode byte must attribute to it even
    // though HBase RegionServers are the direct HDFS clients.
    let stack = SimStack::build(StackConfig::small(5));
    clients::spawn_hget(&stack, 0);
    let q1 = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             Select SUM(incr.delta)",
        )
        .unwrap();
    let q2 = stack
        .install(
            "From incr In DataNodeMetrics.incrBytesRead
             Join cl In First(ClientProtocols) On cl -> incr
             GroupBy cl.procName
             Select cl.procName, SUM(incr.delta)",
        )
        .unwrap();
    stack.run_for_secs(15.0);
    let all: f64 = stack
        .results(&q1)
        .rows()
        .iter()
        .map(|r| r.values[0].as_f64().unwrap_or(0.0))
        .sum();
    let rows = stack.results(&q2).rows();
    assert_eq!(rows.len(), 1, "expected a single client group: {rows:?}");
    assert_eq!(rows[0].values[0], Value::str("HGet"));
    let attributed = rows[0].values[1].as_f64().unwrap();
    assert!(all > 0.0);
    assert!(
        (attributed - all).abs() < 1e-6,
        "attributed {attributed} of {all} bytes"
    );
}

#[test]
fn q3_through_q7_install_and_report() {
    let stack = stack_with_clients();
    let queries = [
        "From dnop In DN.DataTransferProtocol
         GroupBy dnop.host Select dnop.host, COUNT",
        "From getloc In NN.GetBlockLocations
         Join st In StressTest.DoNextOp On st -> getloc
         GroupBy st.host, getloc.src Select st.host, getloc.src, COUNT",
        "From getloc In NN.GetBlockLocations
         Join st In StressTest.DoNextOp On st -> getloc
         GroupBy st.host, getloc.replicas
         Select st.host, getloc.replicas, COUNT",
        "From DNop In DN.DataTransferProtocol
         Join st In StressTest.DoNextOp On st -> DNop
         GroupBy st.host, DNop.host Select st.host, DNop.host, COUNT",
        "From DNop In DN.DataTransferProtocol
         Join getloc In NN.GetBlockLocations On getloc -> DNop
         Join st In StressTest.DoNextOp On st -> getloc
         Where st.host != DNop.host
         GroupBy DNop.host, getloc.replicas
         Select DNop.host, getloc.replicas, COUNT",
    ];
    let handles: Vec<_> = queries
        .iter()
        .map(|q| stack.install(q).expect("paper query compiles"))
        .collect();
    stack.run_for_secs(20.0);
    for (q, h) in queries.iter().zip(&handles) {
        assert!(
            !stack.results(h).rows().is_empty(),
            "no results for query: {q}"
        );
    }
}

#[test]
fn q8_q9_latency_and_job_aggregation() {
    let stack = SimStack::build(StackConfig::small(9));
    clients::spawn_hget(&stack, 0);
    clients::spawn_mrsort(&stack, 1, "MRsortTest", 0.5, 2);

    // Q8: per-request latency between request receipt and response.
    let q8_handle = stack
        .install_named(
            "Q8",
            "From response In RS.SendResponse
             Join request In MostRecent(RS.ReceiveRequest)
               On request -> response
             Select response.timestamp - request.timestamp",
        )
        .unwrap();

    // Q9: average of Q8's measurements per completed job. (The HGet
    // requests don't reach JobComplete; the sort job does.)
    let q9 = stack
        .install_named(
            "Q9",
            "From job In JobComplete
             Join latencyMeasurement In Q8 On latencyMeasurement -> job
             Select job.id, AVERAGE(latencyMeasurement)",
        )
        .unwrap();

    stack.run_for_secs(120.0);
    let rows = stack.results(&q9).rows();
    // The job itself performs no RegionServer requests, so Q9 legitimately
    // has nothing to aggregate — unless jobs and HBase interact. Accept
    // either zero rows or rows with a sane average; the key assertion is
    // that the query-over-query reference installed and ran.
    for r in &rows {
        assert_eq!(r.values[0], Value::str("MRsortTest"));
    }

    // Verify Q8 itself streamed latencies.
    let q8 = stack.results(&q8_handle);
    assert!(
        !q8.raw_rows().is_empty(),
        "Q8 produced no latency measurements"
    );
    for (_, row) in q8.raw_rows() {
        let lat = row.get(0).as_f64().unwrap_or(-1.0);
        assert!(lat >= 0.0, "negative latency {lat}");
    }
}

#[test]
fn union_sources_and_where_filters() {
    let stack = stack_with_clients();
    let q = stack
        .install(
            "From io In FileInputStream, FileOutputStream
             Where io.delta > 0
             GroupBy io.phase
             Select io.phase, COUNT, SUM(io.delta)",
        )
        .unwrap();
    stack.run_for_secs(10.0);
    let rows = stack.results(&q).rows();
    assert!(
        rows.iter().any(|r| r.values[0] == Value::str("HDFS")),
        "expected HDFS-phase IO rows: {rows:?}"
    );
}
