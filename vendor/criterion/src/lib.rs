//! Offline shim for the `criterion` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness: it runs each benchmark for a fixed number
//! of timed batches and prints mean per-iteration wall time. No
//! statistics, plots, or baselines — just enough to keep `cargo bench`
//! (and `cargo test`, which compiles bench targets) working and to give
//! ballpark numbers.

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last run.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run(&label, |b| f(b, input));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run(&label, |b| f(b));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_owned();
        self.run(&name, |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last_ns: 0.0,
        };
        // Warm-up pass, then the measured pass.
        f(&mut b);
        f(&mut b);
        println!("bench: {label:<48} {:>12.1} ns/iter", b.last_ns);
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
