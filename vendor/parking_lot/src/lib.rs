//! Offline shim for the `parking_lot` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation over `std::sync`. Semantics match
//! `parking_lot` for the subset exposed: `lock()`/`read()`/`write()`
//! return guards directly (no poisoning — a poisoned std lock is
//! recovered transparently, matching parking_lot's poison-free model).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot::Mutex` interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
