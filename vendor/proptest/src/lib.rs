//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness: deterministic generation
//! (seeded per test name), the `Strategy` combinators the tests use
//! (`prop_map`, `prop_filter`, `prop_recursive`, tuples, ranges, regex
//! string literals, `prop_oneof!`, `prop::collection::vec`), and the
//! `proptest!` / `prop_assert*` macros. No shrinking: a failing case
//! panics with the full debug rendering of its inputs.

pub mod test_runner {
    use std::fmt;

    /// Why a test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The inputs were rejected (does not count as a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Returns a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// The deterministic generator backing all strategies (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so each property gets a
        /// stable, independent stream across runs.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty choice");
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)`.
        pub fn f64_01(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use std::fmt;
    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A value generator. The shim generates only — there is no
    /// shrinking, so `Value` needs `Debug` (for failure reports) but not
    /// `Clone`.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (regenerating up to
        /// an attempt bound — the shim panics if the filter is too
        /// selective, rather than tracking global rejection budgets).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Builds recursive values: `recurse` receives a strategy for
        /// smaller instances and returns the composite case.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let base = self.boxed();
            Recursive {
                base,
                depth,
                recurse: Arc::new(move |inner| recurse(inner).boxed()),
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T> + 'static>,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                depth: self.depth,
                recurse: Arc::clone(&self.recurse),
            }
        }
    }

    impl<T: fmt::Debug + 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Build a ladder of strategies where each level mixes the
            // base with one more application of the recursive case, then
            // sample the level uniformly — small trees stay common.
            let levels = rng.below(u64::from(self.depth) + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                let deeper = (self.recurse)(s.clone());
                s = Union::new(vec![(1, s), (1, deeper)]).boxed();
            }
            s.generate(rng)
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!options.is_empty(), "empty prop_oneof");
            Union { options }
        }
    }

    impl<T: fmt::Debug + 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            self.options[0].1.generate(rng)
        }
    }

    // ----- ranges ---------------------------------------------------------

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span =
                        (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.f64_01() * (self.end - self.start)
        }
    }

    // ----- tuples ---------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    // ----- regex string literals -----------------------------------------

    /// One atom of the tiny regex subset the shim generates from.
    #[derive(Clone, Debug)]
    enum ReNode {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<(ReNode, u32, u32)>),
    }

    fn parse_regex(
        pat: &mut std::iter::Peekable<std::str::Chars<'_>>,
        in_group: bool,
    ) -> Vec<(ReNode, u32, u32)> {
        let mut out = Vec::new();
        while let Some(&c) = pat.peek() {
            match c {
                ')' if in_group => break,
                '[' => {
                    pat.next();
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    while let Some(&c) = pat.peek() {
                        pat.next();
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && pat.peek() != Some(&']') => {
                                let lo = prev.take().expect("checked");
                                let hi = pat.next().expect("checked peek");
                                ranges.push((lo, hi));
                            }
                            other => {
                                if let Some(p) = prev.replace(other) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    push_quantified(&mut out, ReNode::Class(ranges), pat);
                }
                '(' => {
                    pat.next();
                    let inner = parse_regex(pat, true);
                    assert_eq!(pat.next(), Some(')'), "unclosed group");
                    push_quantified(&mut out, ReNode::Group(inner), pat);
                }
                '\\' => {
                    pat.next();
                    let lit = pat.next().expect("dangling escape");
                    push_quantified(&mut out, ReNode::Lit(lit), pat);
                }
                other => {
                    pat.next();
                    push_quantified(&mut out, ReNode::Lit(other), pat);
                }
            }
        }
        out
    }

    fn push_quantified(
        out: &mut Vec<(ReNode, u32, u32)>,
        node: ReNode,
        pat: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) {
        let (min, max) = match pat.peek() {
            Some('?') => {
                pat.next();
                (0, 1)
            }
            Some('*') => {
                pat.next();
                (0, 8)
            }
            Some('+') => {
                pat.next();
                (1, 8)
            }
            Some('{') => {
                pat.next();
                let mut spec = String::new();
                for c in pat.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n}"),
                        hi.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        out.push((node, min, max));
    }

    fn gen_nodes(nodes: &[(ReNode, u32, u32)], rng: &mut TestRng, out: &mut String) {
        for (node, min, max) in nodes {
            let reps = *min + rng.below(u64::from(*max - *min) + 1) as u32;
            for _ in 0..reps {
                match node {
                    ReNode::Lit(c) => out.push(*c),
                    ReNode::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                            .sum();
                        let mut pick = rng.below(total.max(1));
                        for (lo, hi) in ranges {
                            let span = u64::from(*hi as u32 - *lo as u32 + 1);
                            if pick < span {
                                let c = char::from_u32(*lo as u32 + pick as u32)
                                    .expect("class range in bounds");
                                out.push(c);
                                break;
                            }
                            pick -= span;
                        }
                    }
                    ReNode::Group(inner) => gen_nodes(inner, rng, out),
                }
            }
        }
    }

    /// String literals act as regex-shaped string strategies, matching
    /// proptest's `&str: Strategy<Value = String>` impl for the subset of
    /// regex syntax the tests use (classes, groups, `?`, `{m,n}`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let nodes = parse_regex(&mut self.chars().peekable(), false);
            let mut out = String::new();
            gen_nodes(&nodes, rng, &mut out);
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use std::fmt;
        use std::ops::Range;

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates `Vec`s with lengths drawn from `len` and elements
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S> Strategy for VecStrategy<S>
        where
            S: Strategy,
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1);
                let n = self.len.start + rng.below(span as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Either boolean, uniformly.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.below(2) == 1
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property, failing the current case (not the process) so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!(
            $cond,
            "assertion failed: {}",
            stringify!($cond)
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!($($fmt)*),
                ),
            );
        }
    };
}

/// Asserts two values are equal under `PartialEq`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two values are unequal under `PartialEq`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $($weight:expr => $strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $(
                (
                    $weight as u32,
                    $crate::strategy::Strategy::boxed($strat),
                )
            ),+
        ])
    };
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $(
                (1u32, $crate::strategy::Strategy::boxed($strat))
            ),+
        ])
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident(
                $($pat:pat in $strat:expr),+ $(,)?
            ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                    );
                for case in 0..config.cases {
                    let values = (
                        $(
                            $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut rng,
                            ),
                        )+
                    );
                    let repr = format!("{values:#?}");
                    let ( $($pat,)+ ) = values;
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(
                            _,
                        )) => {}
                        Err($crate::test_runner::TestCaseError::Fail(
                            msg,
                        )) => {
                            panic!(
                                "property `{}` failed at case {}/{}:\n\
                                 {}\ninputs: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg,
                                repr,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_shapes() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-zA-Z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());

            let t = Strategy::generate(&"[A-Z][a-z0-9]{0,5}(\\.[a-z]{1,3})?", &mut rng);
            assert!(t.chars().next().expect("nonempty").is_ascii_uppercase());
            if let Some((_, suffix)) = t.split_once('.') {
                assert!((1..=3).contains(&suffix.len()), "{t:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_vec_work(
            v in prop::collection::vec(
                prop_oneof![2 => 0usize..3, 1 => 10usize..13],
                0..20
            ),
            flag in prop::bool::ANY,
        ) {
            let _ = flag;
            for x in v {
                prop_assert!(x < 3 || (10..13).contains(&x), "{x}");
            }
        }

        #[test]
        fn map_filter_recursive_compose(
            n in (0usize..50).prop_map(|x| x * 2)
                .prop_filter("even", |x| x % 2 == 0)
        ) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
