//! Offline shim for the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal deterministic implementation: an xoshiro256++
//! generator seeded via splitmix64 (the same construction `SmallRng`
//! uses upstream on 64-bit targets), plus the `Rng`, `SeedableRng`, and
//! `SliceRandom` traits restricted to the methods the simulators call.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`]
/// (the shim's analogue of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from `rng` uniformly within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is irrelevant at simulation scales.
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(
                self,
                rng: &mut R,
            ) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a value over `T`'s whole domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ seeded via
    /// splitmix64, as upstream `SmallRng` on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
